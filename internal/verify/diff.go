package verify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cobra"
	"repro/internal/ia64"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/openmp"
)

// Mode is one way of live-patching the program mid-run. Every mode must
// leave the architectural result bit-identical to the unpatched baseline:
// COBRA's rewrites (lfetch→nop, lfetch→lfetch.excl, trace redirection)
// change timing and coherence traffic, never values.
type Mode int

const (
	ModeInPlaceNop      Mode = iota // in-place lfetch → nop mid-run
	ModeInPlaceExcl                 // in-place lfetch → lfetch.excl mid-run
	ModeTraceNop                    // trace-cache copy + entry redirect, nop rewrite
	ModeTraceExcl                   // trace-cache copy + entry redirect, excl rewrite
	ModeRollback                    // in-place nop deployed mid-run, rolled back later
	ModeVariantSwitch               // resident variant table, dispatch switched mid-phase
	ModeVariantRollback             // variant table switched, then restored to original
	ModeParallelSim                 // parallel window engine vs serial engine, no patch
	ModeLayout                      // BOLT-style reordered block copy dispatched mid-run
	ModeLayoutRollback              // reordered copy dispatched, then restored mid-run
	ModePlacement                   // asymmetric NUMA under each placement policy, no patch
	ModeMigration                   // mid-run CPU-to-node migration under a live patch
)

// AllModes returns every differential mode, in deterministic order.
func AllModes() []Mode {
	return []Mode{
		ModeInPlaceNop, ModeInPlaceExcl, ModeTraceNop, ModeTraceExcl, ModeRollback,
		ModeVariantSwitch, ModeVariantRollback, ModeLayout, ModeLayoutRollback,
		ModeParallelSim, ModePlacement, ModeMigration,
	}
}

// parallelSimWorkers are the sim_workers values ModeParallelSim runs the
// program under, each compared bit-identically against the serial run.
var parallelSimWorkers = []int{2, 4, 8}

// policyLabel names a placement policy in mode-result labels (the empty
// string is the first-touch default).
func policyLabel(p mem.PlacementPolicy) string {
	if p == mem.PlaceFirstTouch {
		return "firsttouch"
	}
	return string(p)
}

func (m Mode) String() string {
	switch m {
	case ModeInPlaceNop:
		return "inplace-nop"
	case ModeInPlaceExcl:
		return "inplace-excl"
	case ModeTraceNop:
		return "trace-nop"
	case ModeTraceExcl:
		return "trace-excl"
	case ModeRollback:
		return "rollback"
	case ModeVariantSwitch:
		return "variant-switch"
	case ModeVariantRollback:
		return "variant-rollback"
	case ModeParallelSim:
		return "parallel-sim"
	case ModeLayout:
		return "layout"
	case ModeLayoutRollback:
		return "layout-rollback"
	case ModePlacement:
		return "placement"
	case ModeMigration:
		return "migration"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode is the inverse of String (cobra-verify's -modes flag).
func ParseMode(s string) (Mode, error) {
	for _, m := range AllModes() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("verify: unknown mode %q", s)
}

func (m Mode) useTrace() bool {
	return m == ModeTraceNop || m == ModeTraceExcl || m.useVariants() || m.useLayout()
}

// useVariants reports whether the mode patches through a resident
// multi-version table instead of a single destructive deploy.
func (m Mode) useVariants() bool {
	return m == ModeVariantSwitch || m == ModeVariantRollback
}

// useLayout reports whether the mode deploys a reordered block copy.
func (m Mode) useLayout() bool {
	return m == ModeLayout || m == ModeLayoutRollback
}

func (m Mode) rewrite() cobra.Rewrite {
	if m == ModeInPlaceExcl || m == ModeTraceExcl {
		return cobra.RewriteExcl
	}
	return cobra.RewriteNop
}

// cpuState is the logical architectural register state of one CPU:
// general registers, floating registers as raw bits, predicates, and the
// loop-control application registers. Logical (post-rotation) views, so
// two runs that rotated different amounts but compute the same values
// still compare equal.
type cpuState struct {
	GR [ia64.NumGR]int64
	FR [ia64.NumFR]uint64
	PR [ia64.NumPR]bool
	LC int64
	EC int64
}

type segWords struct {
	Name  string
	Base  uint64
	Words []int64
}

// archState is the full architectural state the oracle compares: every
// CPU's register file plus the contents of every allocated memory
// segment.
type archState struct {
	CPUs []cpuState
	Segs []segWords
}

func snapshotState(m *machine.Machine) *archState {
	st := &archState{}
	for id := 0; id < m.NumCPUs(); id++ {
		rf := &m.CPU(id).RF
		var cs cpuState
		for r := 0; r < ia64.NumGR; r++ {
			cs.GR[r] = rf.GR(uint8(r))
		}
		for r := 0; r < ia64.NumFR; r++ {
			cs.FR[r] = math.Float64bits(rf.FR(uint8(r)))
		}
		for p := 0; p < ia64.NumPR; p++ {
			cs.PR[p] = rf.PR(uint8(p))
		}
		cs.LC, cs.EC = rf.LC, rf.EC
		st.CPUs = append(st.CPUs, cs)
	}
	for _, seg := range m.Memory().Segments() {
		sw := segWords{Name: seg.Name, Base: seg.Base}
		for off := uint64(0); off+8 <= seg.Size; off += 8 {
			sw.Words = append(sw.Words, m.Memory().ReadI64(seg.Base+off))
		}
		st.Segs = append(st.Segs, sw)
	}
	return st
}

// diffStates reports every field where got differs from want, up to
// limit entries — enough to localize a divergence without drowning the
// report when a patch corrupts a whole array.
func diffStates(want, got *archState, limit int) []string {
	var out []string
	add := func(format string, a ...any) bool {
		if len(out) >= limit {
			return false
		}
		out = append(out, fmt.Sprintf(format, a...))
		return true
	}
	if len(want.CPUs) != len(got.CPUs) || len(want.Segs) != len(got.Segs) {
		add("shape: %d/%d CPUs, %d/%d segments", len(got.CPUs), len(want.CPUs), len(got.Segs), len(want.Segs))
		return out
	}
	for id := range want.CPUs {
		w, g := &want.CPUs[id], &got.CPUs[id]
		for r := range w.GR {
			if w.GR[r] != g.GR[r] && !add("cpu%d r%d: got %d want %d", id, r, g.GR[r], w.GR[r]) {
				return out
			}
		}
		for r := range w.FR {
			if w.FR[r] != g.FR[r] && !add("cpu%d f%d: got %#x want %#x", id, r, g.FR[r], w.FR[r]) {
				return out
			}
		}
		for p := range w.PR {
			if w.PR[p] != g.PR[p] && !add("cpu%d p%d: got %v want %v", id, p, g.PR[p], w.PR[p]) {
				return out
			}
		}
		if w.LC != g.LC && !add("cpu%d ar.lc: got %d want %d", id, g.LC, w.LC) {
			return out
		}
		if w.EC != g.EC && !add("cpu%d ar.ec: got %d want %d", id, g.EC, w.EC) {
			return out
		}
	}
	for s := range want.Segs {
		w, g := &want.Segs[s], &got.Segs[s]
		if w.Name != g.Name || len(w.Words) != len(g.Words) {
			if !add("segment %d: %s/%d words vs %s/%d words", s, g.Name, len(g.Words), w.Name, len(w.Words)) {
				return out
			}
			continue
		}
		for i := range w.Words {
			if w.Words[i] != g.Words[i] &&
				!add("mem %s[%d] (%#x): got %d want %d", w.Name, i, w.Base+uint64(8*i), g.Words[i], w.Words[i]) {
				return out
			}
		}
	}
	return out
}

// patchPlan schedules a live patch during a run. nil means baseline.
type patchPlan struct {
	mode       Mode
	deployAt   int64 // cycle the deploy timer fires
	switchAt   int64 // variant modes: cycle the dispatch switches variants
	rollbackAt int64 // ModeRollback/ModeVariantRollback: cycle of the restore timer
}

// runOutcome is everything one execution of a generated program yields.
type runOutcome struct {
	state          *archState
	totalCycles    int64
	parallelCycles int64
	retired        int64
	deployed       bool

	invariantChecks     int64
	invariantViolations []string
}

// maxInstrPerRun bounds one generated-program execution. Generated loops
// are all counted with small immediates, so hitting this means the
// generator (or a patch) manufactured a runaway loop — exactly the class
// of bug the budget converts from a hang into a failure.
const maxInstrPerRun = 50_000_000

// runEnv is one fully-prepared execution environment: fresh machine on a
// cloned image, arrays allocated and seeded, openmp runtime bound, online
// MESI checking armed.
type runEnv struct {
	m    *machine.Machine
	rt   *openmp.Runtime
	img  *ia64.Image
	bind openmp.Binder
}

// numaScenario selects a non-default machine shape for a run: an
// asymmetric node-list NUMA topology under a placement policy, optionally
// with mid-run CPU migrations. Generated programs are race-free and
// therefore timing-independent, so every scenario must reproduce the SMP
// baseline's architectural state bit for bit.
type numaScenario struct {
	placement  mem.PlacementPolicy
	bindNode   int
	migrations []machine.Migration
}

// scenarioNodes is the asymmetric shape the NUMA modes run on: one CPU
// alone on node 0, the rest on node 1 (degenerating to a single node for
// one-thread programs).
func scenarioNodes(threads int) []mem.NodeConfig {
	if threads < 2 {
		return []mem.NodeConfig{{CPUs: threads}}
	}
	return []mem.NodeConfig{{CPUs: 1}, {CPUs: threads - 1}}
}

// setupRun builds a runEnv for p. Allocation order is fixed and memory
// contents re-derive from the seed, so every environment of the same
// program is bit-identically initialized and the simulator's determinism
// makes architectural outcomes comparable across runs. simWorkers > 1
// selects the parallel window engine (ModeParallelSim); 0 is serial.
// A non-nil sc swaps the SMP model for the asymmetric NUMA scenario.
func setupRun(p *Program, simWorkers int, sc *numaScenario) (*runEnv, error) {
	img := p.Img.Clone()
	mcfg := machine.DefaultConfig(p.Cfg.Threads)
	if sc != nil {
		mcfg.Mem = mem.AltixNUMA(p.Cfg.Threads)
		mcfg.Mem.Nodes = scenarioNodes(p.Cfg.Threads)
		mcfg.Mem.Placement = sc.placement
		mcfg.Mem.BindNode = sc.bindNode
		mcfg.Migrations = sc.migrations
	}
	mcfg.Mem.MemBytes = 16 << 20
	mcfg.MaxInstrPerRun = maxInstrPerRun
	mcfg.SimWorkers = simWorkers
	m, err := machine.New(mcfg, img)
	if err != nil {
		return nil, err
	}
	m.Domain().EnableInvariantChecks(0)

	memory := m.Memory()
	roBase, err := memory.Alloc("fuzz.ro", uint64(8*p.Cfg.ROWords), 128)
	if err != nil {
		return nil, err
	}
	rwBase, err := memory.Alloc("fuzz.rw", uint64(8*p.RWWords()), 128)
	if err != nil {
		return nil, err
	}
	resBase, err := memory.Alloc("fuzz.res", 8, 128)
	if err != nil {
		return nil, err
	}
	init := rand.New(rand.NewSource(p.Cfg.Seed ^ 0x0b5e55ed))
	for i := 0; i < p.Cfg.ROWords; i++ {
		memory.WriteI64(roBase+uint64(8*i), init.Int63n(1<<32))
	}
	for i := 0; i < p.RWWords(); i++ {
		memory.WriteI64(rwBase+uint64(8*i), init.Int63n(1<<32))
	}

	rt, err := openmp.NewRuntime(m, p.Cfg.Threads)
	if err != nil {
		return nil, err
	}
	bind := func(tid int, rf *ia64.RegFile) {
		rf.SetGR(regRO, int64(roBase))
		rf.SetGR(regRW, int64(rwBase))
		rf.SetGR(regTIDOff, int64(tid*8))
		rf.SetGR(regRes, int64(resBase))
	}
	return &runEnv{m: m, rt: rt, img: img, bind: bind}, nil
}

// run executes the kernel region and the serial reduction.
func (e *runEnv) run(p *Program) error {
	if err := e.rt.ParallelFor(p.Kernel, int64(p.Cfg.Threads), e.bind); err != nil {
		return err
	}
	return e.rt.Serial(p.Reduce, e.bind)
}

// triagePatchErr classifies a deploy failure by the patcher's typed
// sentinels: ErrNoRewritableSlots and ErrAlreadyPatched mean the patcher
// declined cleanly, so the run continues unpatched and the mode result
// reports "patch never deployed" instead of aborting the whole seed with
// an execution error. Anything else is a patcher bug and stays fatal.
func triagePatchErr(err error) error {
	if errors.Is(err, cobra.ErrNoRewritableSlots) || errors.Is(err, cobra.ErrAlreadyPatched) {
		return nil
	}
	return err
}

// armVariantTimers schedules the multi-version patch plan: at deployAt a
// two-variant table (nop and excl rewrites of every lfetch in the
// target) is deployed resident and the nop variant dispatched; at
// switchAt the dispatch branch flips to the excl variant mid-phase;
// ModeVariantRollback additionally restores the original entry at
// rollbackAt. Dispatch transitions are single-word journaled patches,
// and the architectural result must stay bit-identical through every
// combination.
func armVariantTimers(m *machine.Machine, patcher *cobra.Patcher, region cobra.Region, target Loop, plan *patchPlan, out *runOutcome, deployErr *error) {
	var vs *cobra.VariantSet
	m.AddTimer(&machine.Timer{NextAt: plan.deployAt, Fn: func(now int64) int64 {
		specs := []cobra.VariantSpec{
			{Rewrite: cobra.RewriteNop, Slots: target.Lfetches},
			{Rewrite: cobra.RewriteExcl, Slots: target.Lfetches},
		}
		set, err := patcher.DeployVariants(region, specs)
		if err == nil {
			err = patcher.Switch(set, 0)
		}
		if err = triagePatchErr(err); err != nil {
			*deployErr = err
			return 0
		}
		vs = set
		out.deployed = vs != nil
		return 0
	}})
	m.AddTimer(&machine.Timer{NextAt: plan.switchAt, Fn: func(now int64) int64 {
		if vs == nil {
			return 0 // deploy declined; nothing resident to switch
		}
		if len(vs.Variants) < 2 {
			*deployErr = fmt.Errorf("variant table resident with %d variants, want 2", len(vs.Variants))
			return 0
		}
		if err := patcher.Switch(vs, 1); err != nil && *deployErr == nil {
			*deployErr = err
		}
		return 0
	}})
	if plan.mode == ModeVariantRollback {
		m.AddTimer(&machine.Timer{NextAt: plan.rollbackAt, Fn: func(now int64) int64 {
			if vs != nil {
				if err := patcher.Switch(vs, -1); err != nil && *deployErr == nil {
					*deployErr = err
				}
			}
			return 0
		}})
	}
}

// syntheticEdges builds a deterministic pseudo-profile for the layout
// fuzz modes: every in-region taken edge — each branch's target plus the
// latch's backward edge — gets a seed- and slot-derived weight, so across
// the corpus the greedy trace selection is steered through many different
// block orders while each seed stays exactly reproducible. The oracle has
// no PMU attached; any profile must yield a state-preserving layout, so
// the weights only have to vary, not to be real.
func syntheticEdges(img *ia64.Image, region cobra.Region, seed int64) map[cobra.BranchEdge]int64 {
	edges := map[cobra.BranchEdge]int64{}
	for pc := region.Start; pc <= region.End && pc < img.Len(); pc++ {
		in := img.Fetch(pc)
		if !in.IsBranch() || in.Br == ia64.BrRet {
			continue
		}
		t := int(in.Imm)
		if t < region.Start || t > region.End {
			continue
		}
		w := 1 + int64(mix64(uint64(seed)^uint64(pc)*0x9e3779b97f4a7c15)%13)
		edges[cobra.BranchEdge{From: pc, To: t}] += w
	}
	return edges
}

// armLayoutTimers schedules the block-layout plan: at deployAt the layout
// target's region is partitioned into basic blocks, a hot-path-first
// order computed from the synthetic edge profile, and the reordered copy
// deployed resident and dispatched through the entry word;
// ModeLayoutRollback restores the original entry at rollbackAt. Reordered
// execution must stay architecturally bit-identical — connectors retire
// extra branches, so layout modes are judged on state, never on
// instruction counts.
func armLayoutTimers(m *machine.Machine, patcher *cobra.Patcher, img *ia64.Image, p *Program, plan *patchPlan, out *runOutcome, deployErr *error) {
	target := p.LayoutTarget()
	region := cobra.Region{
		Key:      cobra.LoopKey{Head: target.Head, BranchPC: target.BranchPC},
		Start:    target.Head,
		End:      target.BranchPC,
		FuncName: "fuzz.kernel",
	}
	var vs *cobra.VariantSet
	m.AddTimer(&machine.Timer{NextAt: plan.deployAt, Fn: func(now int64) int64 {
		an := cobra.NewAnalyzer(img, m.Memory())
		spec := an.BuildLayout(region, syntheticEdges(img, region, p.Cfg.Seed))
		if !spec.PlacesBefore(region.Key.Head, region.Key.BranchPC) {
			// The synthetic profile asked for a forward latch; the engine
			// would refuse such an order, so fall back to the identity
			// placement — still a full emit + relocate + dispatch exercise.
			for i := range spec.Order {
				spec.Order[i] = i
			}
		}
		set, err := patcher.DeployLayout(region, spec)
		if err == nil {
			err = patcher.Switch(set, 0)
		}
		if err = triagePatchErr(err); err != nil {
			*deployErr = err
			return 0
		}
		vs = set
		out.deployed = vs != nil
		return 0
	}})
	if plan.mode == ModeLayoutRollback {
		m.AddTimer(&machine.Timer{NextAt: plan.rollbackAt, Fn: func(now int64) int64 {
			if vs != nil {
				if err := patcher.Switch(vs, -1); err != nil && *deployErr == nil {
					*deployErr = err
				}
			}
			return 0
		}})
	}
}

// runProgram executes p on a fresh machine, optionally live-patching it
// mid-run per plan, and snapshots the final architectural state.
func runProgram(p *Program, plan *patchPlan) (*runOutcome, error) {
	return runScenario(p, plan, 0, nil)
}

func runProgramWorkers(p *Program, plan *patchPlan, simWorkers int) (*runOutcome, error) {
	return runScenario(p, plan, simWorkers, nil)
}

func runScenario(p *Program, plan *patchPlan, simWorkers int, sc *numaScenario) (*runOutcome, error) {
	env, err := setupRun(p, simWorkers, sc)
	if err != nil {
		return nil, err
	}
	m := env.m

	out := &runOutcome{}
	var deployErr error
	if plan != nil {
		patcher := cobra.NewPatcher(env.img, plan.mode.useTrace())
		target := p.PatchTarget()
		region := cobra.Region{
			Key:      cobra.LoopKey{Head: target.Head, BranchPC: target.BranchPC},
			Start:    target.Head,
			End:      target.BranchPC,
			FuncName: "fuzz.kernel",
		}
		if plan.mode.useLayout() {
			armLayoutTimers(m, patcher, env.img, p, plan, out, &deployErr)
		} else if plan.mode.useVariants() {
			armVariantTimers(m, patcher, region, target, plan, out, &deployErr)
		} else {
			var patch *cobra.Patch
			m.AddTimer(&machine.Timer{NextAt: plan.deployAt, Fn: func(now int64) int64 {
				patch, deployErr = patcher.Deploy(region, target.Lfetches, plan.mode.rewrite())
				deployErr = triagePatchErr(deployErr)
				out.deployed = patch != nil && deployErr == nil
				return 0
			}})
			if plan.mode == ModeRollback {
				m.AddTimer(&machine.Timer{NextAt: plan.rollbackAt, Fn: func(now int64) int64 {
					if patch != nil {
						if err := patcher.Rollback(patch); err != nil && deployErr == nil {
							deployErr = err
						}
					}
					return 0
				}})
			}
		}
	}

	if err := env.run(p); err != nil {
		return nil, err
	}
	if deployErr != nil {
		return nil, fmt.Errorf("live patch (%v): %w", plan.mode, deployErr)
	}

	out.state = snapshotState(m)
	out.totalCycles = m.GlobalCycle()
	out.parallelCycles = env.rt.Stats()[0].Cycles
	for _, s := range env.rt.Stats() {
		out.retired += s.Retired
	}
	out.invariantChecks = m.Domain().InvariantChecks()
	out.invariantViolations = m.Domain().InvariantViolations()
	return out, nil
}

// ModeResult is the differential verdict of one patched run against the
// baseline.
type ModeResult struct {
	Mode       string
	Cycles     int64
	Deployed   bool
	Mismatches []string // empty = bit-identical to baseline
}

// SeedReport is the full verification record of one generated program.
type SeedReport struct {
	Seed           int64
	Err            string // generation or execution failure ("" = ran)
	BaselineCycles int64
	Retired        int64

	// InvariantChecks counts online MESI checks across all runs — the
	// harness rejects a "clean" report whose checker never ran.
	InvariantChecks     int64
	InvariantViolations []string

	Modes  []ModeResult
	Faults []FaultResult
}

// Failed reports whether anything about the seed's verification went
// wrong: an execution error, an architectural mismatch, an invariant
// violation, a fault run that didn't degrade gracefully — or a run whose
// invariant checker silently never executed.
func (r *SeedReport) Failed() bool {
	if r.Err != "" || len(r.InvariantViolations) > 0 || r.InvariantChecks == 0 {
		return true
	}
	for _, m := range r.Modes {
		if len(m.Mismatches) > 0 || !m.Deployed {
			return true
		}
	}
	for _, f := range r.Faults {
		if f.Failed() {
			return true
		}
	}
	return false
}

// Problems renders every failure of the report as one line each.
func (r *SeedReport) Problems() []string {
	var out []string
	if r.Err != "" {
		out = append(out, "run error: "+r.Err)
	}
	if r.Err == "" && r.InvariantChecks == 0 {
		out = append(out, "invariant checker never ran")
	}
	for _, v := range r.InvariantViolations {
		out = append(out, "invariant: "+v)
	}
	for _, m := range r.Modes {
		if !m.Deployed {
			out = append(out, m.Mode+": patch never deployed")
		}
		for _, d := range m.Mismatches {
			out = append(out, m.Mode+": "+d)
		}
	}
	for _, f := range r.Faults {
		out = append(out, f.Problems()...)
	}
	return out
}

// diffLimit caps mismatch details recorded per mode.
const diffLimit = 16

// VerifySeed generates the program for cfg and runs the full differential
// battery: one baseline, one patched run per mode (deploying mid-parallel
// region, at half the baseline's region duration), and — when faults is
// non-empty — the control-loop fault-injection runs. All runs carry the
// online MESI invariant checker.
func VerifySeed(cfg GenConfig, modes []Mode, faults []FaultKind) SeedReport {
	rep := SeedReport{Seed: cfg.Seed}
	p, err := Generate(cfg)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	base, err := runProgram(p, nil)
	if err != nil {
		rep.Err = "baseline: " + err.Error()
		return rep
	}
	rep.BaselineCycles = base.totalCycles
	rep.Retired = base.retired
	rep.InvariantChecks = base.invariantChecks
	rep.InvariantViolations = append(rep.InvariantViolations, base.invariantViolations...)

	deployAt := base.parallelCycles / 2
	if deployAt < 1 {
		deployAt = 1
	}
	rollbackAt := deployAt + (base.parallelCycles-deployAt)/2
	if rollbackAt <= deployAt {
		rollbackAt = deployAt + 1
	}
	switchAt := deployAt + (rollbackAt-deployAt)/2
	if switchAt <= deployAt {
		switchAt = deployAt + 1
	}
	for _, mode := range modes {
		if mode == ModeParallelSim {
			// Not a patch mode: the same unpatched program runs on the
			// parallel window engine at several worker counts, and every
			// run must be bit-identical to the serial baseline — register
			// files, memory words, and the cycle/retired totals (the
			// window engine replays timing exactly, not approximately).
			for _, w := range parallelSimWorkers {
				run, err := runProgramWorkers(p, nil, w)
				if err != nil {
					rep.Err = fmt.Sprintf("parallel-sim-w%d: %s", w, err)
					return rep
				}
				rep.InvariantChecks += run.invariantChecks
				rep.InvariantViolations = append(rep.InvariantViolations, run.invariantViolations...)
				mismatches := diffStates(base.state, run.state, diffLimit)
				if run.totalCycles != base.totalCycles {
					mismatches = append(mismatches, fmt.Sprintf("total cycles: got %d want %d", run.totalCycles, base.totalCycles))
				}
				if run.retired != base.retired {
					mismatches = append(mismatches, fmt.Sprintf("retired: got %d want %d", run.retired, base.retired))
				}
				rep.Modes = append(rep.Modes, ModeResult{
					Mode:       fmt.Sprintf("parallel-sim-w%d", w),
					Cycles:     run.totalCycles,
					Deployed:   true, // nothing to deploy; satisfies the battery's check
					Mismatches: mismatches,
				})
			}
			continue
		}
		if mode == ModePlacement {
			// Not a patch mode: the unpatched program runs on an asymmetric
			// NUMA topology under every placement policy. Placement moves
			// page homes — timing and hop counts — never values, and the
			// generated programs are race-free, so each run's architectural
			// state must be bit-identical to the SMP baseline's (cycle
			// counts legitimately differ across machine models).
			for _, pol := range []mem.PlacementPolicy{mem.PlaceFirstTouch, mem.PlaceInterleave, mem.PlaceBind} {
				sc := &numaScenario{placement: pol}
				if pol == mem.PlaceBind {
					sc.bindNode = len(scenarioNodes(p.Cfg.Threads)) - 1
				}
				run, err := runScenario(p, nil, 0, sc)
				if err != nil {
					rep.Err = fmt.Sprintf("placement-%s: %s", policyLabel(pol), err)
					return rep
				}
				rep.InvariantChecks += run.invariantChecks
				rep.InvariantViolations = append(rep.InvariantViolations, run.invariantViolations...)
				rep.Modes = append(rep.Modes, ModeResult{
					Mode:       "placement-" + policyLabel(pol),
					Cycles:     run.totalCycles,
					Deployed:   true, // nothing to deploy; satisfies the battery's check
					Mismatches: diffStates(base.state, run.state, diffLimit),
				})
			}
			continue
		}
		var sc *numaScenario
		depAt, swAt, rbAt := deployAt, switchAt, rollbackAt
		if mode == ModeMigration {
			// An in-place nop deploy followed by a mid-region CPU-to-node
			// remap while the patch plane is active. State must still match
			// the SMP baseline bit for bit. Deadlines cannot come from the
			// SMP cycle counts — both the topology and the patch change
			// timing enough that a borrowed deadline can land after the
			// run ends (seed 868: migrating the lone node-0 CPU made every
			// coherent miss intra-node and halved the run). Instead each
			// deadline is taken from a pre-run that is timeline-identical
			// up to the moment it fires: the deploy deadline from an
			// unpatched run on the same topology, the migration deadline
			// from a patched-but-unmigrated run.
			pre, err := runScenario(p, nil, 0, &numaScenario{placement: mem.PlaceFirstTouch})
			if err != nil {
				rep.Err = "migration-baseline: " + err.Error()
				return rep
			}
			rep.InvariantChecks += pre.invariantChecks
			rep.InvariantViolations = append(rep.InvariantViolations, pre.invariantViolations...)
			depAt = pre.parallelCycles / 2
			if depAt < 1 {
				depAt = 1
			}
			swAt, rbAt = depAt+1, depAt+2
			patched, err := runScenario(p, &patchPlan{mode: mode, deployAt: depAt, switchAt: swAt, rollbackAt: rbAt},
				0, &numaScenario{placement: mem.PlaceFirstTouch})
			if err != nil {
				rep.Err = "migration-patched-baseline: " + err.Error()
				return rep
			}
			rep.InvariantChecks += patched.invariantChecks
			rep.InvariantViolations = append(rep.InvariantViolations, patched.invariantViolations...)
			migrateAt := depAt + (patched.parallelCycles-depAt)/2
			if migrateAt <= depAt {
				migrateAt = depAt + 1
			}
			sc = &numaScenario{
				placement: mem.PlaceFirstTouch,
				migrations: []machine.Migration{
					{AtCycle: migrateAt, CPU: 0, Node: len(scenarioNodes(p.Cfg.Threads)) - 1},
				},
			}
		}
		run, err := runScenario(p, &patchPlan{mode: mode, deployAt: depAt, switchAt: swAt, rollbackAt: rbAt}, 0, sc)
		if err != nil {
			rep.Err = mode.String() + ": " + err.Error()
			return rep
		}
		rep.InvariantChecks += run.invariantChecks
		rep.InvariantViolations = append(rep.InvariantViolations, run.invariantViolations...)
		rep.Modes = append(rep.Modes, ModeResult{
			Mode:       mode.String(),
			Cycles:     run.totalCycles,
			Deployed:   run.deployed,
			Mismatches: diffStates(base.state, run.state, diffLimit),
		})
	}
	for _, kind := range faults {
		rep.Faults = append(rep.Faults, RunFault(p, base.state, kind))
	}
	return rep
}

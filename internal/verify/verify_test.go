package verify

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cobra"
	"repro/internal/ia64"
)

// TestGenerateDeterministic pins the generator's contract: the same
// config yields the bit-identical instruction stream and metadata. The
// differential oracle is meaningless without this — two runs of "the same
// program" must really be the same program.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, err := Generate(DefaultGenConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(DefaultGenConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if a.Img.Len() != b.Img.Len() {
			t.Fatalf("seed %d: image lengths differ: %d vs %d", seed, a.Img.Len(), b.Img.Len())
		}
		for pc := 0; pc < a.Img.Len(); pc++ {
			if a.Img.Fetch(pc) != b.Img.Fetch(pc) {
				t.Fatalf("seed %d: slot %d differs: %+v vs %+v", seed, pc, a.Img.Fetch(pc), b.Img.Fetch(pc))
			}
		}
		if !reflect.DeepEqual(a.Loops, b.Loops) || !reflect.DeepEqual(a.Lfetches, b.Lfetches) {
			t.Fatalf("seed %d: metadata differs", seed)
		}
		if len(a.Lfetches) == 0 {
			t.Fatalf("seed %d: no lfetch sites generated", seed)
		}
		if len(a.PatchTarget().Lfetches) == 0 {
			t.Fatalf("seed %d: patch target has no prefetches", seed)
		}
	}
}

// TestDifferentialBatteryBitIdentical is the oracle's core property over
// a handful of seeds: every live-patch mode deploys mid-run and leaves
// the architectural state bit-identical to the unpatched baseline, with
// the online MESI checker active and clean throughout.
func TestDifferentialBatteryBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rep := VerifySeed(DefaultGenConfig(seed), AllModes(), nil)
		if rep.Failed() {
			t.Errorf("seed %d failed:\n  %v", seed, rep.Problems())
		}
		if rep.Retired == 0 {
			t.Errorf("seed %d retired no instructions", seed)
		}
	}
}

// TestParseModeRoundTrip pins the -modes flag contract: every mode's
// String parses back to itself, including the variant-dispatch modes.
func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range AllModes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

// TestTriagePatchErr: the patcher's typed sentinels downgrade a deploy
// failure to "never deployed" while anything else stays fatal.
func TestTriagePatchErr(t *testing.T) {
	if err := triagePatchErr(fmt.Errorf("deploy: %w", cobra.ErrNoRewritableSlots)); err != nil {
		t.Errorf("ErrNoRewritableSlots not triaged: %v", err)
	}
	if err := triagePatchErr(fmt.Errorf("deploy: %w", cobra.ErrAlreadyPatched)); err != nil {
		t.Errorf("ErrAlreadyPatched not triaged: %v", err)
	}
	if err := triagePatchErr(nil); err != nil {
		t.Errorf("nil error mangled: %v", err)
	}
	if triagePatchErr(errors.New("image corrupt")) == nil {
		t.Error("unexpected error class swallowed")
	}
}

// TestVariantModesDeployAndDiffClean exercises the variant-dispatch
// battery directly: the resident table deploys mid-run, the dispatch
// flips variants mid-phase (and back for the rollback mode), and the
// architectural state stays bit-identical to the baseline.
func TestVariantModesDeployAndDiffClean(t *testing.T) {
	rep := VerifySeed(DefaultGenConfig(7), []Mode{ModeVariantSwitch, ModeVariantRollback}, nil)
	if rep.Failed() {
		t.Fatalf("variant battery failed:\n  %v", rep.Problems())
	}
	if len(rep.Modes) != 2 {
		t.Fatalf("got %d mode results, want 2", len(rep.Modes))
	}
	for _, m := range rep.Modes {
		if !m.Deployed {
			t.Errorf("%s: variant table never deployed", m.Mode)
		}
	}
}

// TestOracleDetectsSemanticCorruption proves the differential oracle can
// actually fail: removing the kernel's stores (a rewrite that is NOT
// semantics-neutral) must produce architectural mismatches. A run where
// no seed trips the oracle would mean the comparison is vacuous.
func TestOracleDetectsSemanticCorruption(t *testing.T) {
	detected := false
	for seed := int64(1); seed <= 10 && !detected; seed++ {
		p, err := Generate(DefaultGenConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		base, err := runProgram(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		env, err := setupRun(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		stores := 0
		for pc := p.Kernel.Entry; pc < p.Kernel.End; pc++ {
			if in := env.img.Fetch(pc); in.IsStore() {
				if _, err := env.img.Patch(pc, ia64.Instr{Op: ia64.OpNop, QP: in.QP}); err != nil {
					t.Fatal(err)
				}
				stores++
			}
		}
		if stores == 0 {
			continue
		}
		if err := env.run(p); err != nil {
			t.Fatal(err)
		}
		if diff := diffStates(base.state, snapshotState(env.m), diffLimit); len(diff) > 0 {
			detected = true
		}
	}
	if !detected {
		t.Fatal("oracle never detected deliberately corrupted semantics across 10 seeds")
	}
}

// TestFaultInjectionDegradesGracefully runs the control-loop fault
// battery: perturbed sample paths must terminate cleanly, keep the
// decision-log lifecycle legal, leave MESI invariants intact, deploy
// nothing when starved of evidence, and never change the program's
// architectural result.
func TestFaultInjectionDegradesGracefully(t *testing.T) {
	healthyDeploys := int64(0)
	for seed := int64(2); seed <= 4; seed++ {
		p, err := Generate(DefaultGenConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		base, err := runProgram(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range AllFaults() {
			res := RunFault(p, base.state, kind)
			if res.Failed() {
				t.Errorf("seed %d %v:\n  %v", seed, kind, res.Problems())
			}
			if kind == FaultNone {
				healthyDeploys += res.Patches
			}
		}
	}
	// The healthy-path control must actually patch somewhere, or the
	// starved faults' no-patch assertions assert nothing.
	if healthyDeploys == 0 {
		t.Fatal("healthy control loop never deployed a patch on any seed")
	}
}

// TestRunCorpusSmoke drives the scheduler fan-out end to end: a small
// corpus with fault injection on every third seed, on multiple workers.
func TestRunCorpusSmoke(t *testing.T) {
	sum := RunCorpus(Options{Seed: 1, Count: 6, Jobs: 4, FaultEvery: 3})
	if sum.Failed() {
		for _, f := range sum.Failures {
			t.Errorf("seed %d:\n  %v", f.Seed, f.Problems())
		}
	}
	if sum.Programs != 6 {
		t.Fatalf("programs = %d, want 6", sum.Programs)
	}
	// parallel-sim is one mode but runs once per worker count, and
	// placement is one mode but runs once per placement policy.
	wantRuns := 6*(1+len(AllModes())+len(parallelSimWorkers)-1+3-1) + 2*len(AllFaults())
	if sum.Runs != wantRuns {
		t.Fatalf("runs = %d, want %d", sum.Runs, wantRuns)
	}
	if sum.Checks == 0 {
		t.Fatal("no invariant checks ran")
	}
}

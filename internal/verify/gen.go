// Package verify is the differential verification subsystem: a seeded
// random program generator over the ia64 ISA model, a differential oracle
// that runs each generated program with and without COBRA live-patching
// and demands bit-identical architectural state, online invariant checking
// (MESI legality in mem, decision-log legality in cobra), and a
// fault-injection mode that perturbs the control loop's sample path and
// asserts the runtime degrades to no-patch instead of crashing.
//
// The generator emits only race-free multithreaded programs: every store
// targets a word owned by the storing thread (word w of the shared
// read-write array belongs to thread w mod nthreads), loads read only the
// read-only array or the thread's own words, and all loops are counted
// with immediate trip counts. Architectural results are therefore
// independent of thread interleaving and of execution timing — which is
// exactly what makes a timing-changing binary patch testable: any
// difference in final registers or memory is a correctness bug, never a
// benign scheduling artifact. Prefetches are exempt from the ownership
// discipline (lfetch is non-architectural), so generated programs still
// pull lines back and forth between caches and exercise the coherence
// machinery the patches exist to tame.
package verify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ia64"
)

// Register conventions of generated code. The openmp binder materializes
// the array bases and the thread's partition offset; everything else is
// program-private scratch.
const (
	regRO     = 2 // base of the shared read-only array
	regRW     = 3 // base of the shared read-write array
	regTIDOff = 4 // tid*8: byte offset selecting the thread's words
	regRes    = 5 // base of the result word (reduction output)

	regAddrA = 6 // address temp (loads/stores)
	regAddrB = 7 // address temp (lfetch, pipelined stores)

	scratchLo = 11 // first integer scratch register
	scratchHi = 19 // last integer scratch register

	regOuter = 21 // outer-loop counter (strictly decreasing)

	fpLo = 2 // first FP scratch register
	fpHi = 9 // last FP scratch register

	prSkip    = 4  // forward-skip predicate pair (p4, p5)
	prOuter   = 6  // outer-loop predicate pair (p6, p7)
	prRotBase = 16 // first rotating predicate (ctop stage predicates)
)

// GenConfig parameterizes one generated program. Everything except Seed
// shapes the program family; Seed selects the member.
type GenConfig struct {
	Seed    int64
	Threads int // worker threads (= CPUs of the machine that runs it)
	ROWords int // words of the shared read-only array
	// OwnWords is the number of read-write words each thread owns. The
	// array interleaves ownership at word granularity (word w belongs to
	// thread w mod Threads), so with 128-byte lines every line is shared
	// by several writers — deterministic false sharing by construction.
	OwnWords int
	Blocks   int // top-level constructs in the kernel
	MaxTrip  int // largest loop-trip immediate the generator emits
}

// DefaultGenConfig is the corpus shape used by the fuzz smoke: small
// enough that a seed verifies in milliseconds, large enough that every
// construct kind (counted loops, rotation, predication, FP, prefetch)
// appears within a handful of seeds.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:     seed,
		Threads:  3,
		ROWords:  64,
		OwnWords: 24,
		Blocks:   12,
		MaxTrip:  10,
	}
}

// Loop records one generated loop in absolute image slots.
type Loop struct {
	Head     int    // branch target (loop body entry)
	BranchPC int    // backward branch slot
	Kind     string // "cloop", "ctop" or "outer"
	Lfetches []int  // lfetch slots inside [Head, BranchPC]
}

// Program is one generated test case: an image holding the parallel
// kernel and the serial reduction, plus the metadata the differential
// oracle needs to aim the patcher at it.
type Program struct {
	Cfg      GenConfig
	Img      *ia64.Image
	Kernel   ia64.Func
	Reduce   ia64.Func
	Loops    []Loop
	Lfetches []int // every lfetch slot in the kernel
}

// RWWords returns the total word count of the read-write array.
func (p *Program) RWWords() int { return p.Cfg.Threads * p.Cfg.OwnWords }

// PatchTarget picks the loop the differential oracle patches: the one
// with the most prefetch sites (ties to the lowest Head, so the choice is
// deterministic). The generator guarantees at least one such loop exists.
func (p *Program) PatchTarget() Loop {
	best := -1
	for i, l := range p.Loops {
		if len(l.Lfetches) == 0 {
			continue
		}
		if best == -1 || len(l.Lfetches) > len(p.Loops[best].Lfetches) ||
			(len(l.Lfetches) == len(p.Loops[best].Lfetches) && l.Head < p.Loops[best].Head) {
			best = i
		}
	}
	if best == -1 {
		panic("verify: generated program has no patchable loop") // generator invariant
	}
	return p.Loops[best]
}

// LayoutTarget picks the loop the layout fuzz modes reorder: the one
// whose body contains the most branch instructions below the latch, i.e.
// the richest block structure (outer loops holding inner cloop latches
// and skip guards win). Ties go to the lowest Head; a program whose
// loops are all straight-line still exercises partitioning, connector
// emission and relocation on a two-block region.
func (p *Program) LayoutTarget() Loop {
	best, bestBr := -1, -1
	for i, l := range p.Loops {
		br := 0
		for pc := l.Head; pc < l.BranchPC; pc++ {
			if p.Img.Fetch(pc).IsBranch() {
				br++
			}
		}
		if br > bestBr || (br == bestBr && l.Head < p.Loops[best].Head) {
			best, bestBr = i, br
		}
	}
	if best == -1 {
		panic("verify: generated program has no loops") // generator invariant
	}
	return p.Loops[best]
}

// gen is the in-flight generator state. Loop and lfetch slots are
// recorded function-relative during emission and relocated to absolute
// image slots after Asm.Close fixes the entry.
type gen struct {
	cfg GenConfig
	r   *rand.Rand
	a   *ia64.Asm

	labels   int
	loops    []Loop
	lfetches []int
}

// Generate builds the program selected by cfg. The same config always
// yields the bit-identical instruction stream: the only entropy source is
// the seeded PRNG, consumed in emission order.
func Generate(cfg GenConfig) (*Program, error) {
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("verify: %d threads", cfg.Threads)
	}
	if cfg.OwnWords < 8 || cfg.ROWords < 1 {
		return nil, fmt.Errorf("verify: arrays too small (ro=%d own=%d)", cfg.ROWords, cfg.OwnWords)
	}
	if cfg.MaxTrip < 1 {
		cfg.MaxTrip = 1
	}
	img := ia64.NewImage()

	g := &gen{cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed)), a: ia64.NewAsm(img, "fuzz.kernel")}
	g.kernel()
	kentry, err := g.a.Close()
	if err != nil {
		return nil, fmt.Errorf("verify: assemble kernel: %w", err)
	}
	// Relocate function-relative metadata now that the entry is known.
	for i := range g.loops {
		g.loops[i].Head += kentry
		g.loops[i].BranchPC += kentry
		for j := range g.loops[i].Lfetches {
			g.loops[i].Lfetches[j] += kentry
		}
	}
	for i := range g.lfetches {
		g.lfetches[i] += kentry
	}

	if _, err := emitReduce(img, cfg); err != nil {
		return nil, fmt.Errorf("verify: assemble reduce: %w", err)
	}

	kfn, _ := img.LookupFunc("fuzz.kernel")
	rfn, _ := img.LookupFunc("fuzz.reduce")
	return &Program{
		Cfg: cfg, Img: img,
		Kernel: kfn, Reduce: rfn,
		Loops: g.loops, Lfetches: g.lfetches,
	}, nil
}

func (g *gen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

func (g *gen) scratch() uint8 { return uint8(scratchLo + g.r.Intn(scratchHi-scratchLo+1)) }
func (g *gen) fp() uint8      { return uint8(fpLo + g.r.Intn(fpHi-fpLo+1)) }

// kernel emits the per-thread body. Every thread executes the same code;
// the partition offset in regTIDOff steers its stores to its own words.
func (g *gen) kernel() {
	a := g.a

	// Prologue: deterministic scratch state so every later op has defined
	// inputs regardless of which blocks the PRNG picks.
	for r := scratchLo; r <= scratchHi; r++ {
		a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: uint8(r), Imm: g.r.Int63n(1 << 32)})
	}
	for f := fpLo; f <= fpHi; f++ {
		a.Emit(ia64.Instr{Op: ia64.OpFMovI, R1: uint8(f),
			Imm: int64(math.Float64bits(float64(g.r.Intn(99) + 1)))})
	}

	// Block 0 is always a counted loop with a prefetch, so every program
	// has a patchable region for the differential oracle.
	g.cloopBlock(true)
	for i := 1; i < g.cfg.Blocks; i++ {
		g.block(true)
	}
	a.PadToBundle()
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
}

// block emits one construct. allowControl permits loop and skip
// constructs; it is false inside counted-loop bodies, which stay
// straight-line.
func (g *gen) block(allowControl bool) {
	if allowControl {
		switch g.r.Intn(10) {
		case 0:
			g.cloopBlock(false)
			return
		case 1:
			g.ctopBlock()
			return
		case 2:
			g.outerBlock()
			return
		case 3:
			g.skipBlock()
			return
		}
	}
	switch g.r.Intn(6) {
	case 0:
		g.aluBlock()
	case 1:
		g.roLoad()
	case 2:
		g.ownLoad()
	case 3:
		g.ownStore()
	case 4:
		g.lfetch()
	case 5:
		g.fpBlock()
	}
}

func (g *gen) aluBlock() {
	dst, s1, s2 := g.scratch(), g.scratch(), g.scratch()
	switch g.r.Intn(8) {
	case 0:
		g.a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: dst, R2: s1, R3: s2})
	case 1:
		g.a.Emit(ia64.Instr{Op: ia64.OpSub, R1: dst, R2: s1, R3: s2})
	case 2:
		g.a.Emit(ia64.Instr{Op: ia64.OpAnd, R1: dst, R2: s1, R3: s2})
	case 3:
		g.a.Emit(ia64.Instr{Op: ia64.OpOr, R1: dst, R2: s1, R3: s2})
	case 4:
		g.a.Emit(ia64.Instr{Op: ia64.OpXor, R1: dst, R2: s1, R3: s2})
	case 5:
		g.a.Emit(ia64.Instr{Op: ia64.OpMul, R1: dst, R2: s1, R3: s2})
	case 6:
		g.a.Emit(ia64.Instr{Op: ia64.OpShlI, R1: dst, R2: s1, Imm: int64(1 + g.r.Intn(7))})
	case 7:
		g.a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: dst, R2: s1, Imm: g.r.Int63n(4096) - 2048})
	}
}

// roLoad reads a random word of the shared read-only array.
func (g *gen) roLoad() {
	idx := g.r.Intn(g.cfg.ROWords)
	g.a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: regAddrA, R2: regRO, Imm: int64(8 * idx)})
	g.a.Emit(ia64.Instr{Op: ia64.OpLd, R1: g.scratch(), R2: regAddrA})
}

// ownAddr emits address arithmetic leaving the thread's own word j in
// reg: rwBase + 8*(j*Threads) + tid*8.
func (g *gen) ownAddr(reg uint8, j int) {
	g.a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: reg, R2: regRW, Imm: int64(8 * j * g.cfg.Threads)})
	g.a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: reg, R2: reg, R3: regTIDOff})
}

func (g *gen) ownLoad() {
	g.ownAddr(regAddrA, g.r.Intn(g.cfg.OwnWords))
	g.a.Emit(ia64.Instr{Op: ia64.OpLd, R1: g.scratch(), R2: regAddrA})
}

func (g *gen) ownStore() {
	g.ownAddr(regAddrA, g.r.Intn(g.cfg.OwnWords))
	g.a.Emit(ia64.Instr{Op: ia64.OpSt, R2: regAddrA, R3: g.scratch()})
}

// lfetch prefetches any word of either array — including other threads'
// words. Prefetch moves no architectural data, so it is exempt from the
// ownership discipline and free to drag lines across caches.
func (g *gen) lfetch() {
	if g.r.Intn(2) == 0 {
		idx := g.r.Intn(g.cfg.ROWords)
		g.a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: regAddrB, R2: regRO, Imm: int64(8 * idx)})
	} else {
		idx := g.r.Intn(g.cfg.OwnWords * g.cfg.Threads)
		g.a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: regAddrB, R2: regRW, Imm: int64(8 * idx)})
	}
	slot := g.a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: regAddrB, Hint: ia64.HintNT1})
	g.lfetches = append(g.lfetches, slot)
}

func (g *gen) fpBlock() {
	// Load from own data or the read-only array, arithmetic, store back
	// to an own word.
	fd := g.fp()
	if g.r.Intn(2) == 0 {
		g.ownAddr(regAddrA, g.r.Intn(g.cfg.OwnWords))
	} else {
		g.a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: regAddrA, R2: regRO, Imm: int64(8 * g.r.Intn(g.cfg.ROWords))})
	}
	g.a.Emit(ia64.Instr{Op: ia64.OpLdf, R1: fd, R2: regAddrA})
	switch g.r.Intn(4) {
	case 0:
		g.a.Emit(ia64.Instr{Op: ia64.OpFAdd, R1: g.fp(), R2: fd, R3: g.fp()})
	case 1:
		g.a.Emit(ia64.Instr{Op: ia64.OpFMul, R1: g.fp(), R2: fd, R3: g.fp()})
	case 2:
		g.a.Emit(ia64.Instr{Op: ia64.OpFSub, R1: g.fp(), R2: g.fp(), R3: fd})
	case 3:
		g.a.Emit(ia64.Instr{Op: ia64.OpFma, R1: g.fp(), R2: fd, R3: g.fp(), Imm: int64(g.fp())})
	}
	g.ownAddr(regAddrA, g.r.Intn(g.cfg.OwnWords))
	g.a.Emit(ia64.Instr{Op: ia64.OpStf, R2: regAddrA, R3: g.fp()})
}

// cloopBlock emits a br.cloop counted loop. The body is straight-line:
// a prefetch (always, when forceLfetch, else usually) plus a few simple
// blocks. LC is set immediately before the loop, so nesting under an
// outer counter loop re-arms it every outer iteration.
func (g *gen) cloopBlock(forceLfetch bool) {
	a := g.a
	trip := 1 + g.r.Intn(g.cfg.MaxTrip)
	a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: int64(trip)})
	a.PadToBundle()
	top := g.label("cloop")
	a.Label(top)
	head := a.Len()

	lfStart := len(g.lfetches)
	if forceLfetch || g.r.Intn(4) != 0 {
		g.lfetch()
	}
	for n := 1 + g.r.Intn(3); n > 0; n-- {
		g.block(false)
	}
	branch := a.Br(ia64.BrCloop, 0, top)
	g.loops = append(g.loops, Loop{
		Head: head, BranchPC: branch, Kind: "cloop",
		Lfetches: append([]int(nil), g.lfetches[lfStart:]...),
	})
}

// ctopBlock emits a two-stage software-pipelined br.ctop loop: stage 0
// (predicate p16) loads the thread's words from the first half of its
// partition, stage 1 (p17) stores the value rotated out of stage 0 into
// the second half. Register rotation carries the loaded value from
// logical r32 to r33 across the branch.
func (g *gen) ctopBlock() {
	a := g.a
	half := g.cfg.OwnWords / 2
	trip := 1 + g.r.Intn(min(g.cfg.MaxTrip, half-1))
	stride := int64(8 * g.cfg.Threads)

	a.Emit(ia64.Instr{Op: ia64.OpClrrrb})
	a.Emit(ia64.Instr{Op: ia64.OpMovToECI, Imm: 2})
	a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: int64(trip)})
	// Seed the stage-0 predicate: p16 = (r0 == 0) = true, p17 = false.
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, P1: prRotBase, P2: prRotBase + 1, R2: 0, Rel: ia64.CmpEQ})
	g.ownAddr(regAddrA, 0)    // load cursor: own word 0
	g.ownAddr(regAddrB, half) // store cursor: own word half
	a.PadToBundle()
	top := g.label("ctop")
	a.Label(top)
	head := a.Len()

	lfStart := len(g.lfetches)
	if g.r.Intn(2) == 0 {
		g.lfetchAt(regAddrB) // prefetch the upcoming store target
	}
	a.Emit(ia64.Instr{Op: ia64.OpLd, QP: prRotBase, R1: ia64.RotGRBase, R2: regAddrA})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, QP: prRotBase, R1: regAddrA, R2: regAddrA, Imm: stride})
	a.Emit(ia64.Instr{Op: ia64.OpSt, QP: prRotBase + 1, R2: regAddrB, R3: ia64.RotGRBase + 1})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, QP: prRotBase + 1, R1: regAddrB, R2: regAddrB, Imm: stride})
	branch := a.Br(ia64.BrCtop, 0, top)
	g.loops = append(g.loops, Loop{
		Head: head, BranchPC: branch, Kind: "ctop",
		Lfetches: append([]int(nil), g.lfetches[lfStart:]...),
	})
}

// lfetchAt prefetches through an already-formed address register.
func (g *gen) lfetchAt(reg uint8) {
	slot := g.a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: reg, Hint: ia64.HintNT1})
	g.lfetches = append(g.lfetches, slot)
}

// outerBlock wraps a few inner constructs in a counter loop on a
// dedicated strictly-decreasing register, closed by a conditional
// backward branch — the non-LC loop form, so the profiler's backward
// br.cond path is exercised too.
func (g *gen) outerBlock() {
	a := g.a
	trips := 2 + g.r.Intn(3)
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: regOuter, Imm: int64(trips)})
	a.PadToBundle()
	top := g.label("outer")
	a.Label(top)
	head := a.Len()

	lfStart := len(g.lfetches)
	for n := 2 + g.r.Intn(2); n > 0; n-- {
		// Inner constructs may be counted loops but not another outer
		// loop (regOuter is single) and not skips (label bookkeeping
		// stays linear).
		if g.r.Intn(3) == 0 {
			g.cloopBlock(false)
		} else {
			g.block(false)
		}
	}
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: regOuter, R2: regOuter, Imm: -1})
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, P1: prOuter, P2: prOuter + 1, R2: regOuter, Rel: ia64.CmpGT})
	branch := a.Br(ia64.BrCond, prOuter, top)
	g.loops = append(g.loops, Loop{
		Head: head, BranchPC: branch, Kind: "outer",
		Lfetches: append([]int(nil), g.lfetches[lfStart:]...),
	})
}

// skipBlock emits a forward conditional skip over a few simple blocks.
// The predicate derives from deterministic scratch state, so whether the
// skip is taken is seed-determined, not timing-determined.
func (g *gen) skipBlock() {
	a := g.a
	rel := []ia64.CmpRel{ia64.CmpEQ, ia64.CmpNE, ia64.CmpLT, ia64.CmpGT}[g.r.Intn(4)]
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, P1: prSkip, P2: prSkip + 1,
		R2: g.scratch(), Rel: rel, Imm: g.r.Int63n(1 << 16)})
	done := g.label("skip")
	a.Br(ia64.BrCond, prSkip, done)
	for n := 1 + g.r.Intn(3); n > 0; n-- {
		g.block(false)
	}
	a.Label(done)
}

// emitReduce assembles the serial post-join reduction: CPU 0 sums every
// read-write word into the result word. Running serially after the join
// barrier, it is race-free by construction while forcing CPU 0 to pull
// every dirty line out of the other CPUs' caches — the deterministic
// HITM traffic the invariant checker watches.
func emitReduce(img *ia64.Image, cfg GenConfig) (int, error) {
	a := ia64.NewAsm(img, "fuzz.reduce")
	words := cfg.Threads * cfg.OwnWords
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: scratchLo + 4, Imm: 0}) // accumulator
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: regAddrA, R2: regRW, Imm: 0})
	a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: int64(words - 1)})
	a.PadToBundle()
	a.Label("sum")
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: scratchLo, R2: regAddrA})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: scratchLo + 4, R2: scratchLo + 4, R3: scratchLo})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: regAddrA, R2: regAddrA, Imm: 8})
	a.Br(ia64.BrCloop, 0, "sum")
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: regRes, R3: scratchLo + 4})
	a.PadToBundle()
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	return a.Close()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

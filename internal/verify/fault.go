package verify

import (
	"fmt"

	"repro/internal/cobra"
	"repro/internal/hpm"
	"repro/internal/obs"
	"repro/internal/perfmon"
)

// FaultKind is one way of perturbing COBRA's control loop. Faults attack
// the sample path between the PMU and the User Sampling Buffer — the
// channel every control decision flows through — and the harness demands
// the runtime degrade to not patching (or to patching semantics-neutral
// rewrites) rather than crash or corrupt the program.
type FaultKind int

const (
	// FaultNone leaves the sample path healthy — the control run that
	// proves the loop genuinely patches generated programs, so the
	// no-patch assertions of the starved faults are falsifiable rather
	// than vacuous.
	FaultNone FaultKind = iota
	// FaultDropDrains kills the monitoring thread's copy into the USB:
	// every sample is stolen before Push, so the optimizer drains empty
	// buffers forever. No evidence must mean no patches.
	FaultDropDrains
	// FaultZeroWindows delivers samples whose counters, BTB and DEAR are
	// all zeroed — windows full of samples that carry no signal. Zero
	// evidence must mean no patches.
	FaultZeroWindows
	// FaultCorruptSamples delivers samples with garbage PCs, BTB pairs
	// and DEAR records (half of them pointing outside the binary) and
	// inflated counters. The analyzer's structural guards must reject the
	// garbage or produce only semantics-neutral patches; the program's
	// architectural result must be unaffected either way.
	FaultCorruptSamples
)

// AllFaults returns every fault kind (including the healthy-path
// control), in deterministic order.
func AllFaults() []FaultKind {
	return []FaultKind{FaultNone, FaultDropDrains, FaultZeroWindows, FaultCorruptSamples}
}

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropDrains:
		return "drop-drains"
	case FaultZeroWindows:
		return "zero-windows"
	case FaultCorruptSamples:
		return "corrupt-samples"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// wantNoPatches reports whether the fault starves the control loop of
// evidence, in which case deploying anything is a mis-judgment.
func (k FaultKind) wantNoPatches() bool {
	return k == FaultDropDrains || k == FaultZeroWindows
}

// FaultResult is the verdict of one fault-injection run.
type FaultResult struct {
	Kind          string
	Cycles        int64
	Patches       int64 // deploys the perturbed controller performed
	WantNoPatches bool

	SelfCheckViolations []string // decision-log lifecycle replay
	InvariantViolations []string // online MESI checks
	Mismatches          []string // architectural state vs unmonitored baseline
	Err                 string   // run error or recovered panic
}

// Failed reports whether the run degraded ungracefully.
func (f *FaultResult) Failed() bool {
	return f.Err != "" || len(f.SelfCheckViolations) > 0 ||
		len(f.InvariantViolations) > 0 || len(f.Mismatches) > 0 ||
		(f.WantNoPatches && f.Patches > 0)
}

// Problems renders the failures as one line each.
func (f *FaultResult) Problems() []string {
	var out []string
	pre := "fault " + f.Kind + ": "
	if f.Err != "" {
		out = append(out, pre+"run error: "+f.Err)
	}
	if f.WantNoPatches && f.Patches > 0 {
		out = append(out, fmt.Sprintf("%sdeployed %d patches with no sample evidence", pre, f.Patches))
	}
	for _, v := range f.SelfCheckViolations {
		out = append(out, pre+"lifecycle: "+v)
	}
	for _, v := range f.InvariantViolations {
		out = append(out, pre+"invariant: "+v)
	}
	for _, v := range f.Mismatches {
		out = append(out, pre+"state: "+v)
	}
	return out
}

// faultControlConfig is the COBRA configuration fault runs drive: an
// adaptive controller with thresholds floored so that on a healthy sample
// path a short generated program is enough to trigger patching — which is
// what makes the no-patch assertion under starved faults meaningful.
func faultControlConfig() cobra.Config {
	cfg := cobra.DefaultConfig(cobra.StrategyAdaptive)
	cfg.UseTraceCache = false
	cfg.OptimizeInterval = 1_000
	cfg.MinCoherentEvents = 1
	cfg.CoherentShareThreshold = 0.01
	cfg.CoherentLatency = 100
	cfg.MinLoopSamples = 1
	cfg.MinDelinquentSamples = 1
	cfg.EvaluateWindows = 2
	cfg.Sampling.CyclePeriod = 400
	cfg.Sampling.DEARMinLatency = 50
	cfg.Sampling.DEAREvery = 1
	cfg.SelfCheck = true
	cfg.Obs = obs.New(obs.Config{Decisions: true})
	return cfg
}

// mix64 is a splitmix-style finalizer: the deterministic garbage source
// for corrupt-sample faults. Deriving garbage from the sample's own
// coordinates keeps fault runs reproducible without shared PRNG state.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// faultHandler wraps the genuine USB push with the fault's perturbation.
// imgLen scales garbage PCs so roughly half land inside the binary (where
// the analyzer must bound-check regions) and half outside (where FuncAt
// must reject them).
func faultHandler(kind FaultKind, cpu int, imgLen int, push perfmon.Handler) perfmon.Handler {
	switch kind {
	case FaultDropDrains:
		return func(perfmon.Sample) {}
	case FaultZeroWindows:
		return func(s perfmon.Sample) {
			for i := range s.Counters {
				s.Counters[i].Value = 0
			}
			s.BTB = nil
			s.DEAR = hpm.DEARSample{}
			push(s)
		}
	case FaultCorruptSamples:
		return func(s perfmon.Sample) {
			h := uint64(s.Cycle)*0x9e3779b97f4a7c15 + uint64(cpu+1)
			next := func() uint64 { h = mix64(h + 0x632be59bd9b4e019); return h }
			pcSpace := uint64(2 * imgLen)
			s.PC = int(next() % pcSpace)
			btb := make([]hpm.BranchPair, hpm.BTBEntries)
			for i := range btb {
				btb[i] = hpm.BranchPair{
					BranchPC: int(next() % pcSpace),
					TargetPC: int(next() % pcSpace),
				}
			}
			s.BTB = btb
			for i := range s.Counters {
				s.Counters[i].Value = int64(next() % 100_000)
			}
			s.DEAR = hpm.DEARSample{
				PC:      int(next() % pcSpace),
				Addr:    next() % (1 << 24),
				Latency: int64(next() % 5_000),
				Valid:   next()%2 == 0,
			}
			push(s)
		}
	}
	return push
}

// RunFault executes p under a full COBRA control loop whose sample path
// is perturbed by kind, and asserts graceful degradation: the run
// terminates, the decision log replays legally, MESI invariants hold,
// starved controllers deploy nothing, and the architectural result is
// bit-identical to baseline (COBRA's rewrites are all semantics-neutral,
// so even garbage-driven patches must not change values). baseline is the
// unmonitored reference state from the differential oracle.
func RunFault(p *Program, baseline *archState, kind FaultKind) (res FaultResult) {
	res = FaultResult{Kind: kind.String(), WantNoPatches: kind.wantNoPatches()}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()

	env, err := setupRun(p, 0, nil)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	cb := cobra.New(env.m, faultControlConfig())
	env.rt.OnFork = func(tid, cpu int) {
		cb.MonitorThread(tid, cpu)
		// Interpose on the monitor path: replace the genuine handler with
		// the perturbed one, forwarding (or not) into the real USB.
		u := cb.USB(cpu)
		cb.Driver().Attach(cpu, faultHandler(kind, cpu, env.img.Len(), u.Push))
	}
	if err := env.run(p); err != nil {
		res.Err = err.Error()
		return res
	}

	res.Cycles = env.m.GlobalCycle()
	res.Patches = cb.Stats().PatchesApplied
	res.SelfCheckViolations = cb.SelfCheckViolations()
	res.InvariantViolations = env.m.Domain().InvariantViolations()
	if baseline != nil {
		res.Mismatches = diffStates(baseline, snapshotState(env.m), diffLimit)
	}
	return res
}

package repro_test

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/npb"
	"repro/internal/report"
)

// TestHarnessSmoke drives the whole stack end to end at tiny scale: the
// Figure 3 sweep, Table 1, and one NPB benchmark under all three
// strategies on both machine models, rendered through the report layer.
func TestHarnessSmoke(t *testing.T) {
	cells, err := experiment.Figure3('a', experiment.QuickDaxpyScale())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	report.Figure3(&sb, 'a', cells)

	rows, err := experiment.Table1(npb.ClassT)
	if err != nil {
		t.Fatal(err)
	}
	report.Table1(&sb, rows)

	for _, m := range []experiment.MachineKind{experiment.SMP4, experiment.Altix8} {
		res, err := experiment.RunNPB(m, npb.ClassT, []string{"mg"})
		if err != nil {
			t.Fatal(err)
		}
		report.Figure5(&sb, 'a', res)
		report.Figure6(&sb, 'a', res)
		report.Figure7(&sb, 'a', res)
		report.CobraActivity(&sb, res)
		report.CSV(&sb, res)
	}

	out := sb.String()
	for _, want := range []string{
		"Figure 3(a)", "Table 1", "Figure 5(a)", "Figure 6(a)", "Figure 7(a)",
		"mg.S", "COBRA activity", "machine,threads,bench",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("harness output missing %q", want)
		}
	}
}

package repro_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cobra"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// The declarative scenario matrix: every machine topology crossed with
// every placement policy and every irregular workload, each cell running
// the full adaptive COBRA loop through the scheduler. This is the
// `make matrix-smoke` payload (run there under -race): the cells execute
// concurrently on the worker pool, so the matrix doubles as a race probe
// over the machine-shape plane.
//
// Three invariants per cell:
//   - the kernel's build-time checksum oracle passes (Run returns nil);
//   - the decision-log lifecycle is legal (no orphaned judgements,
//     rollbacks of never-deployed patches, double deploys);
//   - every reported metric is finite — no NaN/Inf IPC or coherence
//     ratio regardless of how asymmetric the shape is.

type matrixTopology struct {
	name  string
	nodes []mem.NodeConfig
}

type matrixPlacement struct {
	name   string
	policy mem.PlacementPolicy
}

type matrixWorkload struct {
	name  string
	build func() *workload.Workload
}

func scenarioTopologies() []matrixTopology {
	return []matrixTopology{
		{"2x2", []mem.NodeConfig{{CPUs: 2}, {CPUs: 2}}},
		{"1+3", []mem.NodeConfig{{CPUs: 1}, {CPUs: 3}}},
		{"1+1+2", []mem.NodeConfig{{CPUs: 1}, {CPUs: 1}, {CPUs: 2}}},
	}
}

func scenarioPlacements() []matrixPlacement {
	return []matrixPlacement{
		{"firsttouch", mem.PlaceFirstTouch},
		{"interleave", mem.PlaceInterleave},
		{"bind", mem.PlaceBind},
	}
}

func scenarioWorkloads() []matrixWorkload {
	return []matrixWorkload{
		{"pointerchase", func() *workload.Workload {
			return workload.PointerChase(workload.PointerChaseParams{Nodes: 1 << 11, Steps: 1 << 10, Reps: 2})
		}},
		{"hashjoin", func() *workload.Workload {
			return workload.HashJoin(workload.HashJoinParams{Slots: 1 << 11, Probes: 1 << 10, Reps: 2})
		}},
		{"spmv", func() *workload.Workload {
			return workload.Spmv(workload.SpmvParams{Rows: 256, Cols: 256, NNZPerRow: 4, Reps: 2})
		}},
	}
}

func TestScenarioMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("27-cell matrix; run via `make matrix-smoke` (or without -short)")
	}
	type cell struct {
		name string
		obs  *obs.Observer
	}
	var cells []*cell
	var jobs []sched.Job[workload.Measurement]
	for _, topo := range scenarioTopologies() {
		for _, pl := range scenarioPlacements() {
			for _, wl := range scenarioWorkloads() {
				topo, pl, wl := topo, pl, wl
				c := &cell{name: fmt.Sprintf("%s/%s/%s", topo.name, pl.name, wl.name)}
				cells = append(cells, c)
				jobs = append(jobs, sched.Job[workload.Measurement]{
					Name: c.name,
					Run: func() (workload.Measurement, error) {
						bc := workload.NUMANodesConfig(4, topo.nodes)
						bc.Machine.Mem.Placement = pl.policy
						if pl.policy == mem.PlaceBind {
							bc.Machine.Mem.BindNode = len(topo.nodes) - 1
						}
						cfg := cobra.DefaultConfig(cobra.StrategyAdaptive)
						cfg.SelfCheck = true
						bc.Cobra = &cfg
						c.obs = obs.New(obs.Config{Metrics: true, Decisions: true})
						bc.Obs = c.obs
						inst, err := workload.Build(wl.build(), bc)
						if err != nil {
							return workload.Measurement{}, err
						}
						m, err := inst.Measure()
						if err != nil {
							return m, err
						}
						if v := inst.Cobra.SelfCheckViolations(); len(v) != 0 {
							return m, fmt.Errorf("runtime self-check: %v", v)
						}
						return m, nil
					},
				})
			}
		}
	}

	results := sched.Run(jobs, sched.Options{Workers: 4})
	for i, res := range results {
		c := cells[i]
		t.Run(c.name, func(t *testing.T) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Value.Cycles <= 0 {
				t.Fatalf("cycles = %d", res.Value.Cycles)
			}
			if v := c.obs.Decisions().Violations(); len(v) != 0 {
				t.Fatalf("decision-log violations: %v", v)
			}
			dump := c.obs.Metrics().Dump()
			for name, g := range dump.Gauges {
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Errorf("gauge %s = %v", name, g)
				}
			}
			for name, h := range dump.Histograms {
				if math.IsNaN(h.Mean) || math.IsInf(h.Mean, 0) {
					t.Errorf("histogram %s mean = %v", name, h.Mean)
				}
			}
			for _, w := range dump.Windows {
				for name, g := range w.Gauges {
					if math.IsNaN(g) || math.IsInf(g, 0) {
						t.Errorf("window @%d gauge %s = %v", w.Cycle, name, g)
					}
				}
			}
		})
	}
}

// Determinism pins for the emission paths: two identical runs in the same
// process must produce byte-identical observability artifacts. The golden
// trace test catches drift against the committed fixture; this test
// catches run-to-run variance — the signature of map-iteration order
// leaking into an emission path (profiler histograms, region evaluation,
// deploy ordering, report rendering) — even for configurations that have
// no committed golden.
package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// emitAll renders every observability surface of one phased adaptive run
// to bytes: the Chrome trace, the metrics JSON dump, and the decision-log
// audit report.
func emitAll(t *testing.T) []byte {
	t.Helper()
	o, _ := runPhasedObserved(t, obs.Config{Trace: true, Metrics: true, Decisions: true})
	var buf bytes.Buffer
	if err := o.Trace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n--- metrics ---\n")
	if err := o.Metrics().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n--- decisions ---\n")
	if err := o.Decisions().Explain(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRepeatedRunEmissionByteEquality(t *testing.T) {
	first := emitAll(t)
	for run := 2; run <= 3; run++ {
		if got := emitAll(t); !bytes.Equal(got, first) {
			line := firstDiffLine(first, got)
			t.Fatalf("run %d emitted different bytes than run 1 (first differing line: %s)", run, line)
		}
	}
}

// firstDiffLine locates the first line that differs between two renderings,
// so a failure points at the nondeterministic emitter instead of a byte
// offset.
func firstDiffLine(a, b []byte) string {
	la, lb := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return la[i] + " vs " + lb[i]
		}
	}
	return "(length mismatch)"
}

# CI entry points. `make ci` is the gate a change must pass: static
# checks, a full build, the scheduler/experiment packages under the race
# detector (the scheduler runs experiment cells concurrently), and the
# full tier-1 test suite.

GO ?= go

.PHONY: ci vet build race test bench results

ci: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./internal/sched/... ./internal/experiment/...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Regenerate the committed experiment outputs through the scheduler.
results:
	$(GO) run ./cmd/cobra-npb -table 1 -progress=false > results/table1.txt
	$(GO) run ./cmd/cobra-npb -figure all -progress=false > results/figures567.txt

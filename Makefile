# CI entry points. `make ci` is the gate a change must pass: static
# checks, a full build, the whole module under the race detector (with
# the short corpus — the service layer runs concurrent sessions, so
# every package rides along), the full tier-1 test suite, and a
# one-iteration benchmark smoke so the hot path cannot silently stop
# compiling or regress to pathological cost.

GO ?= go
BENCH_LABEL ?= $(shell date -u +%Y-%m-%d)
SOAK_DURATION ?= 30s

.PHONY: ci vet build race test bench bench-smoke trace-smoke fuzz-smoke strategy-smoke layout-smoke parsim-smoke stream-smoke matrix-smoke soak-smoke results

ci: vet build race test bench-smoke trace-smoke fuzz-smoke strategy-smoke layout-smoke parsim-smoke stream-smoke matrix-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Whole module under the race detector. -short keeps the corpus small
# (the golden figure sweep already skips itself under -short), so this
# is minutes, not hours, while still covering the concurrent layers:
# sched pool, serve sessions, experiment sweeps.
race:
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

# 30 seconds (SOAK_DURATION) of concurrent clients hammering an
# in-process cobrad under the race detector: sustained submissions,
# ledger hits, mid-run cancellations and backpressure, with the
# terminal-state accounting audited at the end. See EXPERIMENTS.md.
soak-smoke:
	COBRAD_SOAK=$(SOAK_DURATION) $(GO) test -race -run TestSoak -v ./internal/serve/

# Full benchmark suite at -benchtime 1x with allocation stats, recorded
# into the BENCH.json perf ledger under $(BENCH_LABEL).
bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH.json

# One cheap iteration of the core throughput benchmark: a compile+run
# smoke for the simulator hot path, not a measurement.
bench-smoke:
	$(GO) test -bench 'BenchmarkSimulatorThroughput$$' -benchtime 1x -benchmem -run '^$$' .

# Export a cycle-domain Chrome trace of the phase-change run and
# structurally validate it — the observability layer's end-to-end gate.
trace-smoke:
	$(GO) run ./cmd/cobra-run -workload phased -strategy adaptive \
		-trace results/trace-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck results/trace-smoke.json
	rm -f results/trace-smoke.json

# Differential fuzz gate: 1000 fixed-seed random programs, each run
# unpatched and under every live-patch mode with bit-identical final
# state demanded, MESI invariants checked online, and the control-loop
# fault-injection battery on every fifth seed. Fixed seeds keep the gate
# deterministic; a failure prints the seed to replay.
fuzz-smoke:
	$(GO) run ./cmd/cobra-verify -seed 1 -n 1000 -fault-every 5

# Parallel-simulator gate: the machine and memory packages (the window
# engine's home) under the race detector, then the trace-smoke artifact
# regenerated at -sim-workers 4 and byte-compared against a serial run —
# the end-to-end determinism check the unit tests argue for.
parsim-smoke:
	$(GO) test -race -count=1 ./internal/machine/ ./internal/mem/
	$(GO) run ./cmd/cobra-run -workload phased -strategy adaptive \
		-trace results/parsim-serial.json > /dev/null
	$(GO) run ./cmd/cobra-run -workload phased -strategy adaptive \
		-sim-workers 4 -trace results/parsim-w4.json > /dev/null
	cmp results/parsim-serial.json results/parsim-w4.json
	rm -f results/parsim-serial.json results/parsim-w4.json

# Live-telemetry gate: a phased adaptive session runs against an
# in-process cobrad with its SSE stream followed to completion under the
# race detector; the streamed decision transitions must replay to
# byte-equality with the final decisions artifact, the streamed window
# snapshots must equal the metrics artifact's window series, and every
# event must carry strictly monotone ids and finite numbers
# (tracecheck-style structural validation of the event JSON).
stream-smoke:
	$(GO) test -race -count=1 -run 'TestStreamEquivalence|TestStreamResume|TestEventszStream' ./internal/serve/

# Strategy-engine matrix: every registered engine (prefetch, multiversion,
# causal) drives the phased re-adaptation workload with the decision-log
# lifecycle audited for legality, the multiversion engine required to
# switch a resident variant, and the causal engine required to pair its
# what-if prediction with the realized IPC.
strategy-smoke:
	$(GO) test -count=1 ./internal/strategy/

# Layout-engine gate: the full runtime (monitor threads, USB drain,
# trigger, BOLT-style block reordering) on a hand-assembled branchy
# kernel across repeated launches — at least one reordered copy must
# deploy with block evidence, be judged through the relocated loop key,
# keep exactly one resident copy in the code cache, and preserve the
# kernel's architectural result.
layout-smoke:
	$(GO) test -count=1 -run 'TestLayout' ./internal/strategy/

# Scenario-matrix gate: 3 topologies x 3 placement policies x 3
# irregular workloads, every cell running the adaptive COBRA loop
# through the scheduler under the race detector with the decision-log
# lifecycle audited and all metrics required finite; then one
# asymmetric-NUMA pointer-chase cell end to end through cobra-run with
# its cycle-domain trace structurally validated.
matrix-smoke:
	$(GO) test -race -count=1 -run 'TestScenarioMatrix' .
	$(GO) run ./cmd/cobra-run -workload pointerchase -machine numa \
		-topology 1:64,3:64 -placement interleave -strategy adaptive \
		-threads 4 -trace results/matrix-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck results/matrix-smoke.json
	rm -f results/matrix-smoke.json

# Regenerate the committed experiment outputs through the scheduler.
results:
	$(GO) run ./cmd/cobra-npb -table 1 -progress=false > results/table1.txt
	$(GO) run ./cmd/cobra-npb -figure all -progress=false > results/figures567.txt
	REGEN_GOLDEN=1 $(GO) test -run TestGoldenPhasedTrace .

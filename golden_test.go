// Golden-output tests: regenerate the committed results/ files in-process
// and diff them byte-for-byte. This is the safety rail for every
// simulator-hot-path change — the causal engine is deterministic, so any
// byte of drift in a table or figure means the optimization changed
// simulated behavior, not just speed.
package repro_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/experiment"
	"repro/internal/npb"
	"repro/internal/report"
	"repro/internal/workload"
)

// mustGolden reads a committed results file.
func mustGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile("results/" + name)
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	return b
}

// diffBytes fails the test with the first differing line when got != want.
func diffBytes(t *testing.T, name string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("%s drifted at line %d:\n got: %q\nwant: %q", name, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s drifted: %d generated lines vs %d committed", name, len(gl), len(wl))
}

func TestGoldenTable1(t *testing.T) {
	rows, err := experiment.Table1Sched(npb.ClassS, experiment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report.Table1(&buf, rows)
	diffBytes(t, "results/table1.txt", buf.Bytes(), mustGolden(t, "table1.txt"))
}

func TestGoldenFigures567(t *testing.T) {
	if testing.Short() {
		t.Skip("full class-S NPB sweeps on both machine models; skipped with -short")
	}
	// Reproduce `cobra-npb -figure all` exactly: per panel, Figures 5-7 and
	// the COBRA activity report, each followed by a blank line, SMP panel
	// first. One shared build cache, as the command uses.
	opt := experiment.Options{Cache: workload.NewBuildCache()}
	var buf bytes.Buffer
	machines := map[byte]experiment.MachineKind{'a': experiment.SMP4, 'b': experiment.Altix8}
	for _, panel := range []byte{'a', 'b'} {
		res, err := experiment.RunNPBSched(machines[panel], npb.ClassS, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		report.Figure5(&buf, panel, res)
		fmt.Fprintln(&buf)
		report.Figure6(&buf, panel, res)
		fmt.Fprintln(&buf)
		report.Figure7(&buf, panel, res)
		fmt.Fprintln(&buf)
		report.CobraActivity(&buf, res)
		fmt.Fprintln(&buf)
	}
	diffBytes(t, "results/figures567.txt", buf.Bytes(), mustGolden(t, "figures567.txt"))
}

// Observability golden and invariant tests: run the scaled-down phased
// re-adaptation workload with every obs surface enabled and check (a) the
// exported Chrome trace is byte-identical to the committed fixture — the
// cycle-domain clock makes traces fully deterministic, so any drift means
// the control loop's observable behavior changed — and (b) structural
// invariants that must hold for any run: legal patch-lifecycle walks,
// ordered events, tiling optimizer windows, and metrics that agree with
// the Stats counters the reports are built from.
package repro_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/cobra"
	"repro/internal/obs"
	"repro/internal/workload"
)

// phasedScale is the scaled-down re-adaptation run used by the
// observability tests: small enough to finish in a fraction of a second,
// large enough that the adaptive controller deploys a noprefetch patch in
// phase 1 and rolls it back when phase 2 starts streaming — the complete
// candidate → deployed → kept → rolled_back lifecycle.
var phasedScale = workload.PhasedDaxpyParams{
	Elems:       1 << 16,
	WindowElems: 8192,
	Phase1Reps:  40,
	Phase2Reps:  6,
}

// runPhasedObserved executes the scaled phased workload under the
// adaptive strategy with the given observability surfaces attached.
func runPhasedObserved(t *testing.T, oc obs.Config) (*obs.Observer, workload.Measurement) {
	t.Helper()
	bc := workload.SMPConfig(4)
	cfg := cobra.DefaultConfig(cobra.StrategyAdaptive)
	bc.Cobra = &cfg
	o := obs.New(oc)
	bc.Obs = o
	inst, err := workload.Build(workload.PhasedDaxpy(phasedScale), bc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		t.Fatal(err)
	}
	return o, m
}

// TestGoldenPhasedTrace pins the exported trace byte-for-byte. Regenerate
// the fixture after an intentional control-loop or tracer change with:
//
//	REGEN_GOLDEN=1 go test -run TestGoldenPhasedTrace .
func TestGoldenPhasedTrace(t *testing.T) {
	o, m := runPhasedObserved(t, obs.Config{Trace: true, Metrics: true, Decisions: true})
	if m.Cobra.PatchesApplied == 0 || m.Cobra.PatchesRolledBack == 0 {
		t.Fatalf("fixture run must exercise the full lifecycle: patches=%d rollbacks=%d",
			m.Cobra.PatchesApplied, m.Cobra.PatchesRolledBack)
	}
	var buf bytes.Buffer
	if err := o.Trace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const name = "adaptive-daxpy.trace.json"
	if os.Getenv("REGEN_GOLDEN") != "" {
		if err := os.WriteFile("results/"+name, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated results/%s (%d events)", name, o.Trace().Len())
		return
	}
	diffBytes(t, "results/"+name, buf.Bytes(), mustGolden(t, name))
}

func TestPhasedObservabilityEndToEnd(t *testing.T) {
	o, m := runPhasedObserved(t, obs.Config{Trace: true, Metrics: true, Decisions: true})

	// Decision log: the walk must be legal, and this workload must show a
	// deploy and a rollback with evidence attached.
	dl := o.Decisions()
	if v := dl.Violations(); len(v) != 0 {
		t.Fatalf("lifecycle violations: %v", v)
	}
	var sawDeploy, sawRollback bool
	for _, d := range dl.Decisions() {
		switch d.To {
		case obs.StateDeployed:
			sawDeploy = true
			if d.Evidence.BaselineIPC <= 0 {
				t.Errorf("deploy decision without baseline IPC evidence: %+v", d)
			}
		case obs.StateRolledBack:
			sawRollback = true
			if d.Evidence.PatchedIPC >= d.Evidence.BaselineIPC {
				t.Errorf("rollback without an IPC regression in evidence: %+v", d.Evidence)
			}
			if d.Evidence.CooldownUntil <= d.Cycle {
				t.Errorf("rollback without a future cooldown: %+v", d.Evidence)
			}
		}
	}
	if !sawDeploy || !sawRollback {
		t.Fatalf("decision log incomplete: deploy=%v rollback=%v", sawDeploy, sawRollback)
	}

	// Explain renders the same walk as a readable audit report.
	var sb strings.Builder
	if err := dl.Explain(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"candidate", "deployed", "rolled_back", "final region states"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Explain report missing %q", want)
		}
	}

	// Trace: nothing dropped, metadata precedes data, spans have
	// non-negative durations, optimizer windows tile without overlap, and
	// instants are time-ordered within each track.
	tr := o.Trace()
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events at default cap", tr.Dropped())
	}
	sawData := false
	var windowEnd int64
	lastInstant := map[int]int64{}
	lifecycle := []string{}
	for i, e := range tr.Events() {
		switch e.Ph {
		case "M":
			if sawData {
				t.Fatalf("event %d: metadata after data events", i)
			}
		case "X":
			sawData = true
			if e.Dur < 0 {
				t.Fatalf("event %d (%s): negative duration %d", i, e.Name, e.Dur)
			}
			if e.TID == obs.TIDOptimizer && strings.HasPrefix(e.Name, "window ") {
				if e.TS < windowEnd {
					t.Fatalf("window span %q starts at %d inside previous window (ends %d)", e.Name, e.TS, windowEnd)
				}
				windowEnd = e.TS + e.Dur
			}
		case "i":
			sawData = true
			if e.TS < lastInstant[e.TID] {
				t.Fatalf("event %d (%s): instant out of order on tid %d", i, e.Name, e.TID)
			}
			lastInstant[e.TID] = e.TS
			if e.TID == obs.TIDPatch {
				lifecycle = append(lifecycle, e.Name)
			}
		}
	}
	// Instant names are "<stage> <rewrite> @<head>" / "<stage> @<head>";
	// the stage sequence must show the full candidate → deployed →
	// rolled-back arc on the patch track.
	stageAt := func(stage string) int {
		for i, name := range lifecycle {
			if strings.HasPrefix(name, stage) {
				return i
			}
		}
		return -1
	}
	cand, dep, rb := stageAt("candidate"), stageAt("deployed"), stageAt("rolled back")
	if cand == -1 || dep == -1 || rb == -1 || !(cand < dep && dep < rb) {
		t.Fatalf("patch-lifecycle instants incomplete or out of order: %v", lifecycle)
	}

	// Metrics: the registry's counters are the Stats shim's backing store,
	// so they must agree exactly with the measurement's Cobra stats, and
	// per-window snapshots must have been taken.
	reg := o.Metrics()
	for name, want := range map[string]int64{
		"cobra.samples_seen":        m.Cobra.SamplesSeen,
		"cobra.triggers":            m.Cobra.Triggers,
		"cobra.patches_applied":     m.Cobra.PatchesApplied,
		"cobra.patches_rolled_back": m.Cobra.PatchesRolledBack,
		"cobra.prefetches_nopped":   m.Cobra.PrefetchesNopped,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("metric %s = %d, Stats says %d", name, got, want)
		}
	}
	if len(reg.Snapshots()) == 0 {
		t.Error("no per-window metric snapshots were taken")
	}
}

// TestPhasedGoldenUnaffectedByObservability proves attaching a fully
// disabled observer (the production default) changes nothing observable:
// same cycles, same stats as a run with no observer at all.
func TestPhasedGoldenUnaffectedByObservability(t *testing.T) {
	run := func(withObs bool) workload.Measurement {
		bc := workload.SMPConfig(4)
		cfg := cobra.DefaultConfig(cobra.StrategyAdaptive)
		bc.Cobra = &cfg
		if withObs {
			bc.Obs = obs.New(obs.Config{})
		}
		inst, err := workload.Build(workload.PhasedDaxpy(phasedScale), bc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := inst.Measure()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, observed := run(false), run(true)
	if plain.Cycles != observed.Cycles {
		t.Fatalf("disabled observer changed simulated time: %d vs %d cycles", plain.Cycles, observed.Cycles)
	}
	if plain.Cobra != observed.Cobra {
		t.Fatalf("disabled observer changed COBRA stats:\nplain:    %+v\nobserved: %+v", plain.Cobra, observed.Cobra)
	}
}

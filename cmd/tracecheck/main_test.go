package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tracePrelude = `{"displayTimeUnit":"ns",
"otherData":{"clockDomain":"simulated-cycles","dropped":0},
"traceEvents":[
`

func TestCheckAcceptsFiniteArgs(t *testing.T) {
	path := writeTrace(t, tracePrelude+
		`{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"cpu0"}},
{"name":"w","cat":"window","ph":"X","ts":0,"dur":10,"pid":1,"tid":1000,"args":{"ipc":1.5,"samples":3}},
{"name":"drain","cat":"monitor","ph":"i","ts":5,"pid":1,"tid":1000,"s":"t","args":{"cpu":0}},
{"name":"retired","ph":"C","ts":7,"pid":1,"tid":0,"args":{"instr":123}}
]}`)
	problems, _ := check(path)
	if len(problems) != 0 {
		t.Fatalf("clean trace rejected: %v", problems)
	}
}

func TestCheckRejectsNonFiniteCounterAndSpanArgs(t *testing.T) {
	path := writeTrace(t, tracePrelude+
		`{"name":"w","cat":"window","ph":"X","ts":0,"dur":10,"pid":1,"tid":1000,"args":{"ipc":"NaN"}},
{"name":"i1","ph":"i","ts":1,"pid":1,"tid":0,"s":"t","args":{"share":"+Inf","nested":{"v":1e999}}},
{"name":"retired","ph":"C","ts":2,"pid":1,"tid":0,"args":{"instr":1e999}},
{"name":"retired","ph":"C","ts":3,"pid":1,"tid":0,"args":{"instr":"Infinity"}},
{"name":"retired","ph":"C","ts":4,"pid":1,"tid":0,"args":{"instr":null}}
]}`)
	problems, _ := check(path)
	wantFrags := []string{
		`arg "ipc": non-finite value spelled as string "NaN"`,
		`arg "share": non-finite value spelled as string "+Inf"`,
		`arg "nested.v": non-finite number 1e999`,
		`arg "instr": non-finite number 1e999`,
		`counter series "instr": value must be a number`,
	}
	for _, frag := range wantFrags {
		found := false
		for _, p := range problems {
			if strings.Contains(p, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing violation %q in %v", frag, problems)
		}
	}
	// The null counter value and the stringified Infinity are two separate
	// counter-series violations.
	nonNumber := 0
	for _, p := range problems {
		if strings.Contains(p, "value must be a number") {
			nonNumber++
		}
	}
	if nonNumber != 2 {
		t.Errorf("want 2 counter-series type violations, got %d: %v", nonNumber, problems)
	}
}

// Command tracecheck validates a Chrome trace_event JSON file produced by
// the internal/obs tracer (cobra-run -trace, or sweep -artifacts dirs).
// It is the CI gate behind `make trace-smoke`: a cheap structural check
// that the exported artifact is loadable by Perfetto / chrome://tracing
// and respects the tracer's own conventions (cycle-domain clock, known
// phase codes, non-negative timestamps, metadata-before-data ordering).
//
// Exit status is 0 when every check passes, 1 on any violation (all
// violations are listed, not just the first), 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// traceDoc mirrors the JSON object written by obs.Tracer.WriteJSON.
type traceDoc struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
	TraceEvents     []traceEvent   `json:"traceEvents"`
}

type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	TS   *int64          `json:"ts"`
	Dur  *int64          `json:"dur"`
	PID  *int            `json:"pid"`
	TID  *int            `json:"tid"`
	S    string          `json:"s"`
	Args json.RawMessage `json:"args"`
}

// knownPhases are the trace_event phase codes the obs tracer emits.
var knownPhases = map[string]bool{
	"X": true, // complete span
	"i": true, // instant
	"C": true, // counter series
	"M": true, // metadata (thread_name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	var (
		quiet = flag.Bool("q", false, "suppress the per-file summary line")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-q] trace.json [trace.json ...]")
		os.Exit(2)
	}

	failed := false
	for _, path := range flag.Args() {
		problems, summary := check(path)
		for _, p := range problems {
			fmt.Printf("%s: %s\n", path, p)
		}
		if len(problems) > 0 {
			failed = true
		} else if !*quiet {
			fmt.Printf("%s: ok (%s)\n", path, summary)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// check validates one trace file and returns the list of violations plus a
// one-line summary of what the file contains.
func check(path string) (problems []string, summary string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}, ""
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return []string{"not valid JSON: " + err.Error()}, ""
	}

	bad := func(format string, a ...any) {
		problems = append(problems, fmt.Sprintf(format, a...))
	}

	if doc.DisplayTimeUnit == "" {
		bad("missing displayTimeUnit")
	}
	if cd, ok := doc.OtherData["clockDomain"]; !ok {
		bad("otherData.clockDomain missing (trace must declare its cycle-domain clock)")
	} else if cd != "simulated-cycles" {
		bad("otherData.clockDomain = %v, want \"simulated-cycles\"", cd)
	}

	var counts [len("XiCM")]int
	phaseIdx := map[string]int{"X": 0, "i": 1, "C": 2, "M": 3}
	sawData := false
	for i, ev := range doc.TraceEvents {
		where := fmt.Sprintf("event %d (%q)", i, ev.Name)
		if ev.Name == "" {
			bad("event %d: empty name", i)
		}
		if !knownPhases[ev.Ph] {
			bad("%s: unknown phase %q", where, ev.Ph)
			continue
		}
		counts[phaseIdx[ev.Ph]]++
		if ev.PID == nil {
			bad("%s: missing pid", where)
		}
		if ev.TID == nil {
			bad("%s: missing tid", where)
		}
		switch ev.Ph {
		case "M":
			// Metadata must precede all data events so viewers name the
			// tracks before populating them.
			if sawData {
				bad("%s: metadata event after data events", where)
			}
		case "X":
			sawData = true
			if ev.TS == nil || *ev.TS < 0 {
				bad("%s: span needs ts >= 0", where)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				bad("%s: span needs dur >= 0", where)
			}
			for _, p := range checkArgValues(ev.Args, false) {
				bad("%s: %s", where, p)
			}
		case "i":
			sawData = true
			if ev.TS == nil || *ev.TS < 0 {
				bad("%s: instant needs ts >= 0", where)
			}
			if ev.S != "t" {
				bad("%s: instant scope %q, want \"t\" (thread)", where, ev.S)
			}
			for _, p := range checkArgValues(ev.Args, false) {
				bad("%s: %s", where, p)
			}
		case "C":
			sawData = true
			if ev.TS == nil || *ev.TS < 0 {
				bad("%s: counter needs ts >= 0", where)
			}
			if len(ev.Args) == 0 {
				bad("%s: counter without args series", where)
			}
			for _, p := range checkArgValues(ev.Args, true) {
				bad("%s: %s", where, p)
			}
		}
	}

	summary = fmt.Sprintf("%d events: %d spans, %d instants, %d counters, %d metadata",
		len(doc.TraceEvents), counts[0], counts[1], counts[2], counts[3])
	return problems, summary
}

// checkArgValues rejects non-finite numerics in an event's args payload.
// JSON cannot carry a literal NaN, but a producer with an unguarded
// division (a zero-instruction window's IPC) either stringifies the value
// or emits an out-of-range number like 1e999 — both render as broken
// series in viewers and poison any tooling aggregating the trace. Counter
// series ("C") are additionally required to be flat maps of numbers, per
// the trace_event format. Problems are reported in sorted key order so
// output is deterministic.
func checkArgValues(raw json.RawMessage, counterSeries bool) (problems []string) {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep full precision so 1e999 is caught, not pre-rounded
	var args map[string]any
	if err := dec.Decode(&args); err != nil {
		return []string{"args is not a JSON object: " + err.Error()}
	}

	var walk func(key string, v any)
	walk = func(key string, v any) {
		switch x := v.(type) {
		case json.Number:
			f, err := strconv.ParseFloat(x.String(), 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
				problems = append(problems, fmt.Sprintf("arg %q: non-finite number %s", key, x.String()))
			}
		case string:
			if isNonFiniteSpelling(x) {
				problems = append(problems, fmt.Sprintf("arg %q: non-finite value spelled as string %q", key, x))
			}
		case map[string]any:
			for _, k := range sortedKeys(x) {
				walk(key+"."+k, x[k])
			}
		case []any:
			for i, v2 := range x {
				walk(fmt.Sprintf("%s[%d]", key, i), v2)
			}
		}
	}
	for _, k := range sortedKeys(args) {
		if counterSeries {
			if _, ok := args[k].(json.Number); !ok {
				problems = append(problems, fmt.Sprintf("counter series %q: value must be a number, got %T", k, args[k]))
				continue
			}
		}
		walk(k, args[k])
	}
	return problems
}

// isNonFiniteSpelling reports whether s spells NaN or an infinity the way
// fmt/strconv (or a sloppy producer) would print one.
func isNonFiniteSpelling(s string) bool {
	t := strings.TrimLeft(strings.ToLower(strings.TrimSpace(s)), "+-")
	return t == "nan" || t == "inf" || t == "infinity"
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

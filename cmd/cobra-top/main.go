// Command cobra-top tails a cobrad SSE telemetry stream and renders it
// live in the terminal — the `top` of the optimization service.
//
// Two views:
//
//	cobra-top -addr http://host:8321 -session s-000001
//	    One session: a per-region patch-lifecycle timeline
//	    (candidate → deployed → kept / rolled_back / switched / blocked)
//	    with the evidence of the latest decision, plus a rolling-IPC
//	    sparkline fed by the control loop's per-window pass events.
//
//	cobra-top -addr http://host:8321
//	    The whole server (GET /eventsz): every session's state as it
//	    changes, queue depth, and serve.* counter deltas accumulated
//	    since attach.
//
// The client resumes after a dropped connection from the last event id
// it saw (SSE Last-Event-ID), so a flaky link loses nothing the bus
// still retains. -plain switches to one line per event (no ANSI), for
// logs and pipes; -from replays a stream from an earlier sequence
// number (0 = everything the bus retains).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// wireEvent mirrors obs.BusEvent with the payload left raw; decoded
// per-kind below. Kept local so cobra-top stays a pure HTTP client.
type wireEvent struct {
	Seq   int64           `json:"seq"`
	Kind  string          `json:"kind"`
	Cycle int64           `json:"cycle,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

type passEvent struct {
	Window        int     `json:"window"`
	Cycle         int64   `json:"cycle"`
	IPC           float64 `json:"ipc"`
	CoherentShare float64 `json:"coherent_share"`
	Samples       int64   `json:"samples"`
}

type decisionEvent struct {
	Seq    int    `json:"seq"`
	Cycle  int64  `json:"cycle"`
	Region uint64 `json:"region"`
	Window int    `json:"window,omitempty"`
	From   string `json:"from,omitempty"`
	To     string `json:"to"`
	Reason string `json:"reason"`
	Ev     struct {
		BaselineIPC float64 `json:"baseline_ipc,omitempty"`
		PatchedIPC  float64 `json:"patched_ipc,omitempty"`
		Rewrite     string  `json:"rewrite,omitempty"`
		Variant     string  `json:"variant,omitempty"`
	} `json:"evidence"`
}

type sessionEvent struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	State      string `json:"state"`
	Cached     bool   `json:"cached,omitempty"`
	Error      string `json:"error,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
}

type serveEvent struct {
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
	QueueDepth    int              `json:"queue_depth"`
	Running       int              `json:"running"`
}

type endEvent struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cobra-top: ")
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8321", "cobrad base URL")
		session = flag.String("session", "", "session id to tail (empty = server-wide /eventsz view)")
		from    = flag.Int64("from", -1, "resume from this event seq (-1 = live tail from now is impossible; 0 = full retained replay)")
		plain   = flag.Bool("plain", false, "one line per event, no ANSI redraw (for logs and pipes)")
		refresh = flag.Duration("refresh", 250*time.Millisecond, "minimum interval between screen redraws")
	)
	flag.Parse()

	url := *addr + "/eventsz"
	if *session != "" {
		url = *addr + "/sessions/" + *session + "/events"
	}
	start := int64(0)
	if *from > 0 {
		start = *from
	}

	v := newView(*session, *plain, *refresh)
	// Reconnect loop: resume from the last seq seen. A clean end event
	// terminates; transport errors retry until the server disappears for
	// good (bounded retries once events have flowed at least once).
	last, retries := start, 0
	for {
		end, err := tail(url, last, v)
		if end {
			v.finish()
			return
		}
		if v.lastSeq > last {
			last, retries = v.lastSeq, 0
		} else {
			retries++
			if retries > 5 {
				log.Fatalf("stream %s: %v (gave up after %d retries)", url, err, retries)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cobra-top: reconnecting (%v)\n", err)
		}
		time.Sleep(time.Second)
	}
}

// tail follows one SSE connection, feeding events into the view.
// Returns end=true when the stream terminated with an end event.
func tail(url string, from int64, v *view) (end bool, err error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if from > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(from))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // dispatch
			if data.Len() > 0 {
				var ev wireEvent
				if err := json.Unmarshal([]byte(data.String()), &ev); err == nil {
					if v.apply(ev) {
						return true, nil
					}
				}
				data.Reset()
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(line[len("data:"):]))
		case strings.HasPrefix(line, ":"): // comment/heartbeat: surface gaps
			if strings.Contains(line, "gap") && v.plain {
				fmt.Println(line)
			}
		}
	}
	return false, sc.Err()
}

// regionRow is the accumulated lifecycle of one patched region.
type regionRow struct {
	region   uint64
	timeline []string // state abbreviations in decision order
	last     decisionEvent
}

// view renders the stream. Plain mode prints one line per event;
// interactive mode repaints the whole screen, throttled to refresh.
type view struct {
	session string
	plain   bool
	refresh time.Duration

	lastSeq   int64
	lastCycle int64
	lastDraw  time.Time

	// session view
	ipc     []float64 // rolling window IPC, newest last
	windows int
	regions map[uint64]*regionRow

	// server view
	sessions map[string]sessionEvent
	sessOrd  []string
	queue    int
	running  int
	counters map[string]int64 // accumulated serve.* deltas since attach
}

func newView(session string, plain bool, refresh time.Duration) *view {
	return &view{
		session: session, plain: plain, refresh: refresh,
		regions:  map[uint64]*regionRow{},
		sessions: map[string]sessionEvent{},
		counters: map[string]int64{},
	}
}

var stateAbbrev = map[string]string{
	"candidate": "c", "deployed": "D", "kept": "K",
	"rolled_back": "R", "blocked": "B", "switched": "S",
}

// apply folds one event into the view; returns true on the end marker.
func (v *view) apply(ev wireEvent) bool {
	v.lastSeq = ev.Seq
	if ev.Cycle > 0 {
		v.lastCycle = ev.Cycle
	}
	switch ev.Kind {
	case "pass":
		var p passEvent
		if json.Unmarshal(ev.Data, &p) == nil {
			v.windows = p.Window + 1
			v.ipc = append(v.ipc, p.IPC)
			if len(v.ipc) > 60 {
				v.ipc = v.ipc[1:]
			}
			if v.plain {
				fmt.Printf("[%8d] window %3d  cycle %-12d ipc %.4f  coherent %.3f  samples %d\n",
					ev.Seq, p.Window, p.Cycle, p.IPC, p.CoherentShare, p.Samples)
			}
		}
	case "decision":
		var d decisionEvent
		if json.Unmarshal(ev.Data, &d) == nil {
			row := v.regions[d.Region]
			if row == nil {
				row = &regionRow{region: d.Region}
				v.regions[d.Region] = row
			}
			ab := stateAbbrev[d.To]
			if ab == "" {
				ab = "?"
			}
			row.timeline = append(row.timeline, ab)
			row.last = d
			if v.plain {
				fmt.Printf("[%8d] region %#x  %s -> %s  (%s)  rewrite=%s ipc %.4f->%.4f\n",
					ev.Seq, d.Region, orDash(d.From), d.To, d.Reason,
					orDash(d.Ev.Rewrite), d.Ev.BaselineIPC, d.Ev.PatchedIPC)
			}
		}
	case "window":
		// Metric snapshots ride along for dashboards; the terminal view
		// derives everything it shows from pass + decision events.
	case "session":
		var se sessionEvent
		if json.Unmarshal(ev.Data, &se) == nil {
			if _, seen := v.sessions[se.ID]; !seen {
				v.sessOrd = append(v.sessOrd, se.ID)
			}
			v.sessions[se.ID] = se
			v.queue, v.running = se.QueueDepth, se.Running
			if v.plain {
				fmt.Printf("[%8d] session %s  %-9s %s  queue=%d running=%d %s\n",
					ev.Seq, se.ID, se.State, se.Name, se.QueueDepth, se.Running, se.Error)
			}
		}
	case "serve":
		var sv serveEvent
		if json.Unmarshal(ev.Data, &sv) == nil {
			for k, d := range sv.CounterDeltas {
				v.counters[k] += d
			}
			v.queue, v.running = sv.QueueDepth, sv.Running
			if v.plain {
				fmt.Printf("[%8d] serve deltas %v\n", ev.Seq, sv.CounterDeltas)
			}
		}
	case "end":
		var e endEvent
		if json.Unmarshal(ev.Data, &e) == nil && v.plain {
			fmt.Printf("[%8d] end: %s %s\n", ev.Seq, e.State, e.Error)
		}
		return true
	}
	if !v.plain {
		v.draw(false)
	}
	return false
}

func (v *view) finish() {
	if !v.plain {
		v.draw(true)
	}
}

var sparks = []rune("▁▂▃▄▅▆▇█")

func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if hi > lo {
			i = int((x - lo) / (hi - lo) * float64(len(sparks)-1))
		}
		b.WriteRune(sparks[i])
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// draw repaints the screen (ANSI home+clear), throttled unless final.
func (v *view) draw(final bool) {
	now := time.Now()
	if !final && now.Sub(v.lastDraw) < v.refresh {
		return
	}
	v.lastDraw = now

	var b strings.Builder
	b.WriteString("\033[H\033[2J")
	if v.session != "" {
		fmt.Fprintf(&b, "cobra-top — session %s   seq %d   cycle %d   windows %d\n\n",
			v.session, v.lastSeq, v.lastCycle, v.windows)
		if len(v.ipc) > 0 {
			cur := v.ipc[len(v.ipc)-1]
			fmt.Fprintf(&b, "  ipc %.4f  %s\n\n", cur, sparkline(v.ipc))
		}
		if len(v.regions) == 0 {
			b.WriteString("  (no patch decisions yet)\n")
		} else {
			fmt.Fprintf(&b, "  %-14s %-10s %-24s %-9s %s\n", "REGION", "STATE", "TIMELINE", "REWRITE", "IPC base->patched")
			keys := make([]uint64, 0, len(v.regions))
			for k := range v.regions {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				row := v.regions[k]
				tl := strings.Join(row.timeline, "→")
				if len(tl) > 24 {
					tl = "…" + tl[len(tl)-23:]
				}
				rw := row.last.Ev.Rewrite
				if row.last.Ev.Variant != "" {
					rw = row.last.Ev.Variant
				}
				fmt.Fprintf(&b, "  %-14s %-10s %-24s %-9s %.4f->%.4f  (%s)\n",
					fmt.Sprintf("%#x", k), row.last.To, tl, orDash(rw),
					row.last.Ev.BaselineIPC, row.last.Ev.PatchedIPC, row.last.Reason)
			}
		}
	} else {
		fmt.Fprintf(&b, "cobra-top — server   seq %d   queue %d   running %d\n\n",
			v.lastSeq, v.queue, v.running)
		if len(v.counters) > 0 {
			names := make([]string, 0, len(v.counters))
			for n := range v.counters {
				names = append(names, n)
			}
			sort.Strings(names)
			b.WriteString("  deltas since attach:")
			for _, n := range names {
				fmt.Fprintf(&b, "  %s=%d", strings.TrimPrefix(n, "serve."), v.counters[n])
			}
			b.WriteString("\n\n")
		}
		fmt.Fprintf(&b, "  %-10s %-9s %-30s %s\n", "SESSION", "STATE", "NAME", "NOTE")
		for i := len(v.sessOrd) - 1; i >= 0 && i >= len(v.sessOrd)-20; i-- {
			se := v.sessions[v.sessOrd[i]]
			note := se.Error
			if se.Cached {
				note = "ledger hit"
			}
			fmt.Fprintf(&b, "  %-10s %-9s %-30s %s\n", se.ID, se.State, se.Name, note)
		}
	}
	if final {
		b.WriteString("\nstream ended\n")
	}
	os.Stdout.WriteString(b.String())
}

// Command cobra-npb regenerates the paper's NPB experiments: Table 1
// (static counts) and Figures 5-7 (speedup, L3 misses and bus transactions
// under the COBRA noprefetch and prefetch.excl optimizations, on the 4-way
// SMP and the Altix cc-NUMA models).
//
// Every experiment cell runs as an independent job on the internal/sched
// worker pool (-jobs), compiled binaries are shared across strategies
// through the build cache, and -incremental skips cells already recorded
// in the run ledger. Output is deterministic: identical for any -jobs
// value and for cached vs executed cells.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/npb"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cobra-npb: ")
	var (
		table   = flag.Int("table", 0, "regenerate a table (1)")
		figure  = flag.String("figure", "", "regenerate figures: 5a,5b,6a,6b,7a,7b, or 'all'")
		classS  = flag.Bool("class-s", true, "class-S-scaled problem sizes (false = tiny)")
		benches = flag.String("benches", "", "comma-separated benchmark subset (default: the paper's six)")

		jobs        = flag.Int("jobs", 0, "concurrent experiment cells (0 = GOMAXPROCS)")
		incremental = flag.Bool("incremental", false, "skip cells already recorded in the run ledger")
		ledgerDir   = flag.String("ledger-dir", "results/ledger", "run ledger directory (with -incremental)")
		progress    = flag.Bool("progress", true, "print per-cell progress lines to stderr")
		artifacts   = flag.String("artifacts", "", "write per-cell observability artifacts (trace/metrics/decisions) to DIR")
	)
	flag.Parse()

	opt, err := schedOptions(*jobs, *incremental, *ledgerDir, *progress, *artifacts)
	if err != nil {
		log.Fatal(err)
	}

	class := npb.ClassT
	if *classS {
		class = npb.ClassS
	}

	if *table == 1 {
		rows, err := experiment.Table1Sched(class, opt)
		if err != nil {
			log.Fatal(err)
		}
		report.Table1(os.Stdout, rows)
		return
	}

	if *figure == "" {
		fmt.Fprintln(os.Stderr, "usage: cobra-npb -table 1 | -figure 5a|5b|6a|6b|7a|7b|all [-benches bt,sp,...] [-jobs N] [-incremental]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	want := map[string]bool{}
	if *figure == "all" {
		for _, f := range []string{"5a", "5b", "6a", "6b", "7a", "7b"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figure, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	// One sweep per machine serves all its figures.
	machines := map[byte]experiment.MachineKind{'a': experiment.SMP4, 'b': experiment.Altix8}
	for _, panel := range []byte{'a', 'b'} {
		needed := want["5"+string(panel)] || want["6"+string(panel)] || want["7"+string(panel)]
		if !needed {
			continue
		}
		res, err := experiment.RunNPBSched(machines[panel], class, names, opt)
		if err != nil {
			log.Fatal(err)
		}
		if want["5"+string(panel)] {
			report.Figure5(os.Stdout, panel, res)
			fmt.Println()
		}
		if want["6"+string(panel)] {
			report.Figure6(os.Stdout, panel, res)
			fmt.Println()
		}
		if want["7"+string(panel)] {
			report.Figure7(os.Stdout, panel, res)
			fmt.Println()
		}
		report.CobraActivity(os.Stdout, res)
		fmt.Println()
	}
}

// schedOptions assembles the scheduler options shared by every sweep of
// this invocation: one worker pool size, one optional ledger, one build
// cache (so the SMP and NUMA sweeps of -figure all reuse compiles where
// configurations coincide).
func schedOptions(jobs int, incremental bool, ledgerDir string, progress bool, artifactDir string) (experiment.Options, error) {
	opt := experiment.Options{Jobs: jobs, Cache: workload.NewBuildCache(), ArtifactDir: artifactDir}
	if incremental {
		led, err := sched.OpenLedger(ledgerDir)
		if err != nil {
			return opt, err
		}
		opt.Ledger = led
	}
	if progress {
		opt.Hooks = sched.ConsoleHooks(os.Stderr)
	}
	return opt, nil
}

// Command cobra-verify fuzzes the COBRA stack with the differential
// verification subsystem: it generates seeded random multithreaded ia64
// programs, runs each one unpatched and under every live-patch mode
// (in-place and trace-cache, nop and excl rewrites, mid-run rollback),
// and demands bit-identical architectural state — while the online MESI
// invariant checker audits every memory access. A fraction of seeds also
// runs the control-loop fault-injection battery (dropped drains, zeroed
// windows, corrupted samples) and asserts the runtime degrades to
// no-patch instead of crashing or mis-judging.
//
// Exit status is non-zero when any seed fails, making the command a CI
// gate (`make fuzz-smoke`). Seeds are the whole reproduction story: a
// failure prints its seed, and `cobra-verify -seed N -n 1` replays it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/sched"
	"repro/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cobra-verify: ")
	var (
		seed       = flag.Int64("seed", 1, "first seed of the corpus")
		n          = flag.Int("n", 1000, "number of generated programs")
		threads    = flag.Int("threads", 3, "worker threads per generated program")
		jobs       = flag.Int("jobs", 0, "concurrent seeds (0 = GOMAXPROCS)")
		modesFlag  = flag.String("modes", "", "comma-separated patch modes (default: all of "+modeList()+")")
		faultEvery = flag.Int("fault-every", 10, "run the fault-injection battery on every n-th seed (0 = never)")
		progress   = flag.Bool("progress", false, "print per-seed progress lines to stderr")
		maxPrint   = flag.Int("max-print", 10, "failing seeds to detail before truncating")
	)
	flag.Parse()

	modes, err := parseModes(*modesFlag)
	if err != nil {
		log.Fatal(err)
	}
	opt := verify.Options{
		Seed:       *seed,
		Count:      *n,
		Threads:    *threads,
		Jobs:       *jobs,
		Modes:      modes,
		FaultEvery: *faultEvery,
	}
	if *progress {
		opt.Hooks = sched.ConsoleHooks(os.Stderr)
	}

	sum := verify.RunCorpus(opt)
	fmt.Println(sum.String())
	if !sum.Failed() {
		return
	}
	for i, rep := range sum.Failures {
		if i >= *maxPrint {
			fmt.Printf("... and %d more failing seeds\n", len(sum.Failures)-i)
			break
		}
		fmt.Printf("seed %d (replay: cobra-verify -seed %d -n 1 -fault-every 1):\n", rep.Seed, rep.Seed)
		for _, p := range rep.Problems() {
			fmt.Println("  " + p)
		}
	}
	os.Exit(1)
}

func modeList() string {
	var names []string
	for _, m := range verify.AllModes() {
		names = append(names, m.String())
	}
	return strings.Join(names, ",")
}

func parseModes(csv string) ([]verify.Mode, error) {
	if csv == "" {
		return nil, nil
	}
	var modes []verify.Mode
	for _, name := range strings.Split(csv, ",") {
		m, err := verify.ParseMode(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	return modes, nil
}

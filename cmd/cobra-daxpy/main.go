// Command cobra-daxpy regenerates the paper's DAXPY experiments: the
// Figure 2 assembly listing (-dump-asm) and the Figure 3 normalized
// execution time sweeps (-figure 3a | 3b).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiment"
	"repro/internal/ia64"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cobra-daxpy: ")
	var (
		figure  = flag.String("figure", "", "regenerate figure: 3a (noprefetch) or 3b (prefetch.excl)")
		dumpAsm = flag.Bool("dump-asm", false, "disassemble the compiled DAXPY kernel (the paper's Figure 2)")
		quick   = flag.Bool("quick", false, "reduced sweep for a fast run")
	)
	flag.Parse()

	switch {
	case *dumpAsm:
		if err := dump(); err != nil {
			log.Fatal(err)
		}
	case *figure == "3a" || *figure == "3b":
		scale := experiment.DefaultDaxpyScale()
		if *quick {
			scale = experiment.QuickDaxpyScale()
		}
		cells, err := experiment.Figure3(byte((*figure)[1]), scale)
		if err != nil {
			log.Fatal(err)
		}
		report.Figure3(os.Stdout, byte((*figure)[1]), cells)
	default:
		fmt.Fprintln(os.Stderr, "usage: cobra-daxpy -figure 3a|3b [-quick] | -dump-asm")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

// dump compiles the DAXPY kernel and prints its disassembly, showing the
// icc-style shape of Figure 2: prologue lfetch burst, software-pipelined
// ctop loop with rotating registers, and steady-state lfetch.nt1.
func dump() error {
	w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: 128 << 10, OuterReps: 1})
	inst, err := workload.Build(w, workload.SMPConfig(1))
	if err != nil {
		return err
	}
	fmt.Println("// Compiled OpenMP DAXPY kernel (cf. paper Figure 2)")
	ia64.DumpFunc(os.Stdout, inst.Ctx.M.Image(), inst.Ctx.Res.Funcs["daxpy_body"].Fn)
	return nil
}

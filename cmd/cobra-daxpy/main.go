// Command cobra-daxpy regenerates the paper's DAXPY experiments: the
// Figure 2 assembly listing (-dump-asm) and the Figure 3 normalized
// execution time sweeps (-figure 3a | 3b).
//
// The Figure 3 sweep runs its (working set × threads × variant) cells as
// independent jobs on the internal/sched worker pool (-jobs), with
// -incremental skipping cells already recorded in the run ledger. Output
// is deterministic regardless of worker count.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiment"
	"repro/internal/ia64"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cobra-daxpy: ")
	var (
		figure  = flag.String("figure", "", "regenerate figure: 3a (noprefetch) or 3b (prefetch.excl)")
		dumpAsm = flag.Bool("dump-asm", false, "disassemble the compiled DAXPY kernel (the paper's Figure 2)")
		quick   = flag.Bool("quick", false, "reduced sweep for a fast run")

		jobs        = flag.Int("jobs", 0, "concurrent experiment cells (0 = GOMAXPROCS)")
		incremental = flag.Bool("incremental", false, "skip cells already recorded in the run ledger")
		ledgerDir   = flag.String("ledger-dir", "results/ledger", "run ledger directory (with -incremental)")
		progress    = flag.Bool("progress", true, "print per-cell progress lines to stderr")
		artifacts   = flag.String("artifacts", "", "write per-cell observability artifacts (trace/metrics/decisions) to DIR")
	)
	flag.Parse()

	switch {
	case *dumpAsm:
		if err := dump(); err != nil {
			log.Fatal(err)
		}
	case *figure == "3a" || *figure == "3b":
		scale := experiment.DefaultDaxpyScale()
		if *quick {
			scale = experiment.QuickDaxpyScale()
		}
		opt := experiment.Options{Jobs: *jobs, ArtifactDir: *artifacts}
		if *incremental {
			led, err := sched.OpenLedger(*ledgerDir)
			if err != nil {
				log.Fatal(err)
			}
			opt.Ledger = led
		}
		if *progress {
			opt.Hooks = sched.ConsoleHooks(os.Stderr)
		}
		cells, err := experiment.Figure3Sched(byte((*figure)[1]), scale, opt)
		if err != nil {
			log.Fatal(err)
		}
		report.Figure3(os.Stdout, byte((*figure)[1]), cells)
	default:
		fmt.Fprintln(os.Stderr, "usage: cobra-daxpy -figure 3a|3b [-quick] [-jobs N] [-incremental] | -dump-asm")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

// dump compiles the DAXPY kernel and prints its disassembly, showing the
// icc-style shape of Figure 2: prologue lfetch burst, software-pipelined
// ctop loop with rotating registers, and steady-state lfetch.nt1.
func dump() error {
	w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: 128 << 10, OuterReps: 1})
	inst, err := workload.Build(w, workload.SMPConfig(1))
	if err != nil {
		return err
	}
	fmt.Println("// Compiled OpenMP DAXPY kernel (cf. paper Figure 2)")
	ia64.DumpFunc(os.Stdout, inst.Ctx.M.Image(), inst.Ctx.Res.Funcs["daxpy_body"].Fn)
	return nil
}

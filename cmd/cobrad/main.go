// Command cobrad serves the COBRA optimization framework over HTTP:
// clients POST optimization-session requests (workload, machine model,
// strategy, thread count), cobrad runs each as a cancellable session on
// a shared scheduler pool — cloning the compiled workload image from a
// build cache so concurrent sessions share no mutable state — and serves
// results, live progress and observability artifacts as JSON.
//
// Endpoints:
//
//	GET  /healthz                          liveness (ok | draining)
//	GET  /metricsz                         service metrics registry dump
//	GET  /eventsz                          server-wide SSE stream: session
//	                                       state changes, queue depth,
//	                                       serve.* counter deltas
//	POST /sessions                         submit a session (Spec JSON)
//	GET  /sessions[?state=S]               list sessions (submission order)
//	GET  /sessions/{id}                    session status + live progress
//	GET  /sessions/{id}/result             bare measurement JSON
//	GET  /sessions/{id}/events             live SSE stream (artifacts.events):
//	                                       per-window IPC, metric deltas,
//	                                       patch-lifecycle decisions;
//	                                       resumable via Last-Event-ID
//	POST /sessions/{id}/cancel             cancel (also DELETE /sessions/{id})
//	GET  /sessions/{id}/artifacts/{kind}   trace | metrics | decisions
//
// A full queue answers 429 with Retry-After; SIGINT/SIGTERM drains
// running sessions (persisting their ledger entries) before exiting, and
// force-cancels only when -drain-timeout expires.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cobrad: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:8321", "listen address")
		workers     = flag.Int("workers", 0, "session worker-pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "queued-session bound (0 = 2x workers); full queue answers 429")
		timeout     = flag.Duration("timeout", 2*time.Minute, "default per-session timeout")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "largest per-session timeout a request may ask for")
		ledgerDir   = flag.String("ledger-dir", "", "run ledger directory shared with cobra-run -incremental (empty = none)")
		maxSessions = flag.Int("max-sessions", 0, "retained session records (0 = 1024); oldest finished evicted first")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline before in-flight sessions are force-cancelled")
		simWorkers  = flag.Int("sim-workers", 0, "default sim_workers for sessions that don't set one (parallel window engine; 0/1 = serial, byte-identical results)")
		streamSubs  = flag.Int("stream-subs", 0, "max concurrent SSE subscribers per event stream (0 = 32); excess answered 429")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		LedgerDir:         *ledgerDir,
		MaxSessions:       *maxSessions,
		SimWorkers:        *simWorkers,
		StreamSubscribers: *streamSubs,
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d queue=%d ledger=%q)", *addr, *workers, *queue, *ledgerDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately

	log.Printf("signal received; draining sessions (deadline %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain deadline expired; in-flight sessions were cancelled: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	<-errc // ListenAndServe has returned ErrServerClosed
}

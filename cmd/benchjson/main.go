// Command benchjson converts `go test -bench` output on stdin into the
// tracked BENCH.json perf ledger. Each run is appended as a dated entry
// holding every benchmark's ns/op, B/op, allocs/op and custom metrics
// (sim_instrs/op etc.), so the repository carries its own performance
// trajectory and a regression is a one-line diff of BENCH.json.
//
// Usage:
//
//	go test -bench . -benchtime 1x -benchmem . | go run ./cmd/benchjson -label "pr2" -out BENCH.json
//
// The output file is read-modify-write: existing entries are preserved and
// the new run appended. An entry with the same label is replaced, so
// re-running a labelled benchmark updates its row instead of duplicating it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurements. Metrics holds every
// "value unit" pair on the line keyed by unit (ns/op, B/op, allocs/op,
// sim_instrs/op, ...).
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Entry is one recorded benchmark run.
type Entry struct {
	Label      string   `json:"label"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// File is the whole BENCH.json document.
type File struct {
	Comment string  `json:"comment"`
	Entries []Entry `json:"entries"`
}

const comment = "Performance ledger: appended by `make bench` via cmd/benchjson. " +
	"Compare entries' ns/op across labels to track the simulator's perf trajectory."

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		label = flag.String("label", "", "entry label (default: date)")
		out   = flag.String("out", "BENCH.json", "ledger file to update")
		tee   = flag.Bool("tee", true, "echo stdin to stdout while parsing")
	)
	flag.Parse()

	results := parse(os.Stdin, *tee)
	if len(results) == 0 {
		log.Fatal("no benchmark lines found on stdin (need `go test -bench` output)")
	}

	date := time.Now().UTC().Format("2006-01-02")
	lbl := *label
	if lbl == "" {
		lbl = date
	}
	entry := Entry{
		Label:      lbl,
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}

	var f File
	if b, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(b, &f); err != nil {
			log.Fatalf("existing %s is not valid JSON: %v", *out, err)
		}
	}
	f.upsert(entry)

	b, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("recorded %d benchmarks under label %q in %s", len(results), lbl, *out)
}

// upsert appends entry to the ledger, replacing an existing entry with
// the same label so a re-run updates its row instead of duplicating it.
func (f *File) upsert(e Entry) {
	f.Comment = comment
	for i := range f.Entries {
		if f.Entries[i].Label == e.Label {
			f.Entries[i] = e
			return
		}
	}
	f.Entries = append(f.Entries, e)
}

// parse extracts benchmark result lines ("BenchmarkX-8  1  123 ns/op  4 B/op ...")
// from r, optionally echoing everything read.
//
// Non-finite metric values are rejected: strconv.ParseFloat happily
// accepts "NaN" and "Inf", but encoding/json refuses to marshal them, so
// recording one would make the ledger write fail at the very end of a
// benchmark run. A line whose metrics are all non-finite is dropped.
func parse(r io.Reader, tee bool) []Result {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if tee {
			fmt.Println(line)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: trimProcSuffix(fields[0]), Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				log.Printf("dropping non-finite metric %s=%v in %s (not JSON-encodable)", fields[i+1], v, fields[0])
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		if len(res.Metrics) > 0 {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return results
}

// trimProcSuffix drops the -GOMAXPROCS suffix so entries compare across
// machines ("BenchmarkSimulatorThroughput-8" -> "BenchmarkSimulatorThroughput").
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []Result
	}{
		{
			name:  "empty input",
			input: "",
			want:  nil,
		},
		{
			name:  "no benchmark lines",
			input: "goos: linux\ngoarch: amd64\nPASS\nok \trepro\t1.2s\n",
			want:  nil,
		},
		{
			name:  "standard line with benchmem",
			input: "BenchmarkSimulatorThroughput-8   \t       3\t 123456789 ns/op\t     512 B/op\t       7 allocs/op\n",
			want: []Result{{
				Name:  "BenchmarkSimulatorThroughput",
				Iters: 3,
				Metrics: map[string]float64{
					"ns/op": 123456789, "B/op": 512, "allocs/op": 7,
				},
			}},
		},
		{
			name:  "custom metric",
			input: "BenchmarkDaxpy-4 10 5000 ns/op 2400000 sim_instrs/op\n",
			want: []Result{{
				Name:    "BenchmarkDaxpy",
				Iters:   10,
				Metrics: map[string]float64{"ns/op": 5000, "sim_instrs/op": 2400000},
			}},
		},
		{
			name:  "NaN metric dropped, finite kept",
			input: "BenchmarkBad-2 5 100 ns/op NaN ratio/op\n",
			want: []Result{{
				Name:    "BenchmarkBad",
				Iters:   5,
				Metrics: map[string]float64{"ns/op": 100},
			}},
		},
		{
			name:  "all metrics non-finite drops the line",
			input: "BenchmarkWorse-2 5 NaN ns/op +Inf B/op -Inf allocs/op\n",
			want:  nil,
		},
		{
			name:  "malformed iteration count skipped",
			input: "BenchmarkX-8 lots 100 ns/op\n",
			want:  nil,
		},
		{
			name: "mixed stream keeps order",
			input: "goos: linux\n" +
				"BenchmarkA-8 1 10 ns/op\n" +
				"BenchmarkB-8 2 20 ns/op\n" +
				"PASS\n",
			want: []Result{
				{Name: "BenchmarkA", Iters: 1, Metrics: map[string]float64{"ns/op": 10}},
				{Name: "BenchmarkB", Iters: 2, Metrics: map[string]float64{"ns/op": 20}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parse(strings.NewReader(tc.input), false)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parse(%q):\n got %+v\nwant %+v", tc.input, got, tc.want)
			}
			// Whatever parse accepts must survive the ledger's JSON encode —
			// the invariant the NaN/Inf rejection exists to protect.
			if _, err := json.Marshal(got); err != nil {
				t.Errorf("parse result not JSON-encodable: %v", err)
			}
		})
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSimulatorThroughput-8": "BenchmarkSimulatorThroughput",
		"BenchmarkX-128":                 "BenchmarkX",
		"BenchmarkNoSuffix":              "BenchmarkNoSuffix",
		"BenchmarkTrailing-dash":         "BenchmarkTrailing-dash",
		"Benchmark-8":                    "Benchmark",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUpsertReplacesSameLabel(t *testing.T) {
	var f File
	f.upsert(Entry{Label: "pr1", Date: "2026-01-01"})
	f.upsert(Entry{Label: "pr2", Date: "2026-02-01"})
	if len(f.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(f.Entries))
	}
	if f.Comment == "" {
		t.Fatal("upsert did not set the ledger comment")
	}
	f.upsert(Entry{Label: "pr1", Date: "2026-03-01"})
	if len(f.Entries) != 2 {
		t.Fatalf("re-labelled upsert duplicated: %d entries", len(f.Entries))
	}
	if f.Entries[0].Date != "2026-03-01" {
		t.Errorf("entry pr1 not replaced in place: date %s", f.Entries[0].Date)
	}
	if f.Entries[1].Label != "pr2" {
		t.Errorf("entry order disturbed: %+v", f.Entries)
	}
}

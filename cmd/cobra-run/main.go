// Command cobra-run executes any workload of the suite on either machine
// model, optionally under a COBRA strategy, and prints the measured
// execution time, memory-system counters and COBRA activity — the generic
// entry point for exploring the framework.
//
// The flag set parses into an internal/serve Spec — the same session
// description the cobrad service accepts over HTTP — so a batch run and a
// served session of one configuration are the same job by construction:
// same content hash (shared run-ledger namespace), same build path, same
// byte-identical artifacts.
//
// The run goes through the internal/sched scheduler like the sweep
// commands: -incremental reuses a recorded measurement from the run
// ledger when the exact configuration (workload, parameters, machine,
// threads, strategy) was measured before, and -jobs is accepted for
// interface uniformity (a single run occupies one worker).
//
// Observability: -trace FILE writes a cycle-domain Chrome trace_event
// JSON (open in Perfetto / chrome://tracing), -metrics FILE dumps the
// metrics registry, and -explain prints the patch-decision audit report.
// All three record simulated cycles, never wall time, so repeated runs of
// one configuration produce byte-identical artifacts.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cobra-run: ")
	var (
		name     = flag.String("workload", "daxpy", "daxpy, phased, pointerchase, hashjoin, spmv, bt, sp, lu, ft, mg, cg, ep, is")
		threads  = flag.Int("threads", 4, "worker threads (= CPUs)")
		machine  = flag.String("machine", "smp", "smp (front-side bus) or numa (Altix-like)")
		strategy = flag.String("strategy", "off", "off, monitor, noprefetch, excl, adaptive, bias, multiversion, causal, layout")
		classS   = flag.Bool("class-s", true, "class-S-scaled sizes (false = tiny)")
		ws       = flag.Int64("daxpy-ws", 128<<10, "DAXPY working set bytes")
		reps     = flag.Int("daxpy-reps", 100, "DAXPY outer repetitions")

		topology  = flag.String("topology", "", `explicit NUMA node list "cpus[:mem_mb],..." (e.g. "2,4,2" or "4:128,4:128")`)
		placement = flag.String("placement", "", "page placement policy: first-touch (default), interleave, bind")
		bindNode  = flag.Int("bind-node", 0, "home node for -placement bind")
		affinity  = flag.String("affinity", "", `thread-to-CPU pinning "cpu,cpu,..." (one per thread; default identity)`)
		migrate   = flag.String("migrate", "", `mid-run CPU migration "cycle:cpu:node"`)
		simw     = flag.Int("sim-workers", 0, "simulator worker goroutines (parallel window engine; 0/1 = serial, byte-identical results)")
		patches  = flag.Bool("show-patches", false, "list the binary patches COBRA deployed")

		traceFile    = flag.String("trace", "", "write a cycle-domain Chrome trace_event JSON to FILE (Perfetto-loadable)")
		traceSamples = flag.Bool("trace-samples", false, "with -trace: one instant event per perfmon sample (dense)")
		metricsFile  = flag.String("metrics", "", "write the metrics registry dump (counters/gauges/histograms per window) to FILE")
		explain      = flag.Bool("explain", false, "print the patch-decision audit report (evidence for every deploy/keep/rollback)")

		jobs        = flag.Int("jobs", 0, "scheduler worker-pool size (0 = GOMAXPROCS)")
		incremental = flag.Bool("incremental", false, "reuse a recorded measurement from the run ledger")
		ledgerDir   = flag.String("ledger-dir", "results/ledger", "run ledger directory (with -incremental)")
		progress    = flag.Bool("progress", false, "print scheduler progress lines to stderr")
	)
	flag.Parse()

	spec := serve.Spec{
		Workload:   *name,
		Threads:    *threads,
		Machine:    *machine,
		Strategy:   *strategy,
		ClassS:     classS,
		DaxpyWS:    *ws,
		DaxpyReps:  *reps,
		SimWorkers: *simw,
		Placement:  *placement,
		BindNode:   *bindNode,
	}
	if err := parseScenarioFlags(&spec, *topology, *affinity, *migrate); err != nil {
		log.Fatal(err)
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	key, err := spec.Key()
	if err != nil {
		log.Fatal(err)
	}

	// Observability: the observer is attached via BuildConfig.Obs, which is
	// excluded from the content hash (json:"-"), so tracing a configuration
	// neither invalidates nor forks its ledger entry.
	var observer *obs.Observer
	if *traceFile != "" || *metricsFile != "" || *explain {
		observer = obs.New(obs.Config{
			Trace:        *traceFile != "",
			SampleEvents: *traceSamples,
			Metrics:      *metricsFile != "",
			Decisions:    *explain,
		})
	}

	opt := sched.Options{Workers: *jobs}
	if *incremental {
		led, err := sched.OpenLedger(*ledgerDir)
		if err != nil {
			log.Fatal(err)
		}
		opt.Ledger = led
	}
	if *progress {
		opt.Hooks = sched.ConsoleHooks(os.Stderr)
	}

	// The workload is instantiated inside the job so a ledger hit skips all
	// construction; inst is captured for -show-patches (nil on a hit).
	var inst *workload.Instance
	job := sched.Job[workload.Measurement]{
		Key:  key,
		Name: spec.Name(),
		Run: func() (workload.Measurement, error) {
			i, err := spec.Instantiate(nil, observer)
			if err != nil {
				return workload.Measurement{}, err
			}
			inst = i
			return i.Measure()
		},
	}
	results := sched.Run([]sched.Job[workload.Measurement]{job}, opt)
	if err := sched.FirstErr(results); err != nil {
		log.Fatal(err)
	}
	m := results[0].Value

	fmt.Printf("workload   %s (%d threads, %s, strategy=%s)\n", m.Name, m.Threads, spec.Machine, spec.Strategy)
	if results[0].Cached {
		fmt.Println("source     run ledger (recorded measurement; rerun without -incremental to re-execute)")
	}
	fmt.Printf("cycles     %d\n", m.Cycles)
	st := m.Mem
	fmt.Printf("memory     loads=%d stores=%d prefetches=%d (dropped %d)\n",
		st.Loads, st.Stores, st.Prefetches, st.PrefetchesDropped)
	fmt.Printf("caches     L2miss=%d L3miss=%d writebacks=%d\n", st.L2Misses, st.L3Misses, st.Writebacks)
	fmt.Printf("bus        transactions=%d rdHit=%d rdHitm=%d rdInvalHitm=%d upgrades=%d\n",
		st.BusMemory, st.BusRdHit, st.BusRdHitm, st.BusRdInvalAllHitm, st.BusUpgrades)
	fmt.Printf("coherence  ratio=%.4f demand-avg-latency=%.1f\n",
		st.CoherentRatio(), float64(st.DemandLatencyTotal)/float64(max64(st.DemandAccesses, 1)))
	if spec.Strategy != "off" {
		cs := m.Cobra
		fmt.Printf("cobra      samples=%d passes=%d triggers=%d patches=%d rollbacks=%d nopped=%d excl=%d biased=%d traces=%d\n",
			cs.SamplesSeen, cs.OptimizerPasses, cs.Triggers, cs.PatchesApplied,
			cs.PatchesRolledBack, cs.PrefetchesNopped, cs.PrefetchesExcl, cs.LoadsBiased, cs.TracesEmitted)
		if *patches {
			if inst == nil {
				fmt.Println("  (patch list unavailable for a ledger-cached run)")
			} else {
				for _, p := range inst.Cobra.ActivePatches() {
					fmt.Printf("  patch: region [%d,%d] in %s: %d prefetches -> %s (trace entry %d)\n",
						p.Region.Start, p.Region.End, p.Region.FuncName,
						p.RewrittenPrefetches, p.Rewrite, p.TraceEntry)
				}
			}
		}
	}

	if observer != nil {
		if results[0].Cached {
			fmt.Println("observability artifacts unavailable for a ledger-cached run (rerun without -incremental)")
		} else {
			if *traceFile != "" {
				if err := observer.Trace().WriteFile(*traceFile); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("trace      %s (%d events, %d dropped; open in Perfetto)\n",
					*traceFile, observer.Trace().Len(), observer.Trace().Dropped())
			}
			if *metricsFile != "" {
				if err := observer.Metrics().WriteFile(*metricsFile); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("metrics    %s\n", *metricsFile)
			}
			if *explain {
				fmt.Println()
				if err := observer.Decisions().Explain(os.Stdout); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	os.Exit(0)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// parseScenarioFlags fills the scenario-matrix Spec fields from their
// compact flag syntaxes: -topology "cpus[:mem_mb],...", -affinity
// "cpu,cpu,...", -migrate "cycle:cpu:node". Range and consistency
// validation is Spec.Validate's job; this only parses.
func parseScenarioFlags(spec *serve.Spec, topology, affinity, migrate string) error {
	if topology != "" {
		for _, field := range strings.Split(topology, ",") {
			var n serve.NodeSpec
			cpus, memMB, hasMem := strings.Cut(field, ":")
			c, err := strconv.Atoi(strings.TrimSpace(cpus))
			if err != nil {
				return fmt.Errorf("-topology node %q: %v", field, err)
			}
			n.CPUs = c
			if hasMem {
				mb, err := strconv.ParseInt(strings.TrimSpace(memMB), 10, 64)
				if err != nil {
					return fmt.Errorf("-topology node %q: %v", field, err)
				}
				n.MemMB = mb
			}
			spec.Topology = append(spec.Topology, n)
		}
	}
	if affinity != "" {
		for _, field := range strings.Split(affinity, ",") {
			cpu, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				return fmt.Errorf("-affinity entry %q: %v", field, err)
			}
			spec.Affinity = append(spec.Affinity, cpu)
		}
	}
	if migrate != "" {
		parts := strings.Split(migrate, ":")
		if len(parts) != 3 {
			return fmt.Errorf(`-migrate %q: want "cycle:cpu:node"`, migrate)
		}
		at, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		cpu, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		node, err3 := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf(`-migrate %q: want "cycle:cpu:node"`, migrate)
		}
		spec.MigrateAt, spec.MigrateCPU, spec.MigrateNode = at, cpu, node
	}
	return nil
}
